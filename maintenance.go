package hsq

import (
	"fmt"
	"sync"
	"time"
)

// Background maintenance: the machinery that executes the heavy half of an
// end-of-step — external sort, level-0 install, cascading κ-way merges —
// outside the write path.
//
// EndStep is split into two phases. The fast synchronous phase seals the
// step: the in-memory batch and the GK sketch are cut atomically (elements
// observed afterwards belong to the next step), the raw batch is spilled,
// and a manifest referencing the spill is durably committed — so the step
// survives any crash exactly as it did when the whole install was
// synchronous. The deferred phase installs sealed steps into the on-disk
// leveled store; until a step's install completes, queries cover it through
// its frozen stream summary (a core.StreamPiece), so answers always span
// the full observed history.
//
// Three maintenance modes pick who runs the deferred phase:
//
//   - sync (default): EndStep runs it inline under the engine write lock —
//     the original behavior, bit-for-bit, including its I/O accounting.
//   - async: a DB-wide scheduler runs it on a bounded worker pool. Per
//     stream, installs are FIFO (step order); across streams, the pool is
//     shared and dispatch is round-robin. Config.MaxPendingSteps bounds how
//     far a stream's installs may lag its seals; EndStep blocks
//     (backpressure) when the bound is hit.
//   - manual: nothing runs until SyncMaintenance — deterministic, for
//     harnesses like internal/crashtest that need reproducible operation
//     orderings.

// Maintenance mode names for Config.Maintenance.
const (
	// MaintenanceSync runs the full install inside EndStep (legacy).
	MaintenanceSync = "sync"
	// MaintenanceAsync defers installs to the DB-wide background scheduler.
	MaintenanceAsync = "async"
	// MaintenanceManual defers installs until SyncMaintenance is called.
	MaintenanceManual = "manual"
)

type maintMode int

const (
	maintSync maintMode = iota
	maintAsync
	maintManual
)

func (m maintMode) String() string {
	switch m {
	case maintAsync:
		return MaintenanceAsync
	case maintManual:
		return MaintenanceManual
	default:
		return MaintenanceSync
	}
}

// sealedPiece is the query-visible face of one sealed-but-uninstalled step:
// the frozen stream summary extracted from the GK sketch at seal time.
// Queries treat it exactly like the live stream — estimate-only, no disk
// probes — so its rank error contributes at most ε₂·count.
type sealedPiece struct {
	step  int
	count int64
	ss    []int64
}

// maintAccum aggregates a stream's maintenance counters; guarded by the
// engine's mu.
type maintAccum struct {
	installs    int
	merges      int
	installTime time.Duration
	running     bool
	bpWaits     int64
	bpTime      time.Duration
	lastErr     string
}

// MaintenanceStats describes one stream's background-maintenance state.
type MaintenanceStats struct {
	// Mode is the stream's maintenance mode: "sync", "async" or "manual".
	Mode string
	// PendingSteps is the number of sealed steps awaiting installation.
	PendingSteps int
	// PendingElements is the element count across pending steps — the
	// stream's merge debt.
	PendingElements int64
	// Running reports an install or merge executing right now.
	Running bool
	// Installs counts deferred installs completed since open.
	Installs int
	// Merges counts level merges run by deferred installs since open.
	Merges int
	// InstallTime is total wall-clock spent in deferred installs.
	InstallTime time.Duration
	// BackpressureWaits counts EndStep calls that blocked on
	// MaxPendingSteps; BackpressureTime is the total time they waited.
	BackpressureWaits int64
	BackpressureTime  time.Duration
	// MaintIO is the stream's maintenance-attributed I/O (sorts, partition
	// writes, merge passes) — always a subset of DiskStats.
	MaintIO IOStats
	// LastError is the most recent maintenance failure ("" when healthy).
	// A non-empty value with PendingSteps > 0 means the stream is stalled;
	// SyncMaintenance retries.
	LastError string
}

// MaintenanceStats returns the stream's current maintenance counters.
func (e *Engine) MaintenanceStats() MaintenanceStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var pendingN int64
	for _, p := range e.sealed {
		pendingN += p.count
	}
	ms := MaintenanceStats{
		Mode:              e.mode.String(),
		PendingSteps:      len(e.sealed),
		PendingElements:   pendingN,
		Running:           e.mstats.running,
		Installs:          e.mstats.installs,
		Merges:            e.mstats.merges,
		InstallTime:       e.mstats.installTime,
		BackpressureWaits: e.mstats.bpWaits,
		BackpressureTime:  e.mstats.bpTime,
		MaintIO:           fromDisk(e.dev.MaintStats()),
		LastError:         e.mstats.lastErr,
	}
	if e.maintErr != nil {
		ms.LastError = e.maintErr.Error()
	}
	return ms
}

// wakeLocked signals every goroutine waiting for maintenance progress
// (backpressure waiters, SyncMaintenance). Caller holds e.mu.
func (e *Engine) wakeLocked() {
	close(e.wake)
	e.wake = make(chan struct{})
}

// maintFailed wraps a sticky maintenance error for the write path.
func maintFailed(err error) error {
	return fmt.Errorf("hsq: stream maintenance failed (SyncMaintenance retries): %w", err)
}

// runMaintenanceOnce installs at most one sealed step (sort, level-0
// install, cascading merges, commit). It returns whether a step was
// installed. Install failures before the step becomes visible are sticky
// (maintErr): the pending queue stalls and the write path surfaces the
// error until SyncMaintenance retries. Failures after the step is published
// (an unfinished merge cascade, a failed commit) are recorded but not
// sticky — the next install or commit repairs them.
func (e *Engine) runMaintenanceOnce() (bool, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false, ErrClosed
	}
	if len(e.sealed) == 0 {
		e.mu.Unlock()
		return false, nil
	}
	e.mstats.running = true
	e.mu.Unlock()

	t0 := time.Now()
	bd, step, err := e.store.InstallOne(manifestName)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.mstats.running = false
	if step != 0 {
		// The step is installed and published: retire its frozen summary so
		// queries stop double-covering it, even if a later merge or the
		// commit failed.
		if len(e.sealed) > 0 && e.sealed[0].step == step {
			e.sealed = e.sealed[1:]
		}
		e.mstats.installs++
		e.mstats.merges += bd.Merges
		e.mstats.installTime += time.Since(t0)
	}
	if err != nil {
		e.mstats.lastErr = err.Error()
		if step == 0 {
			e.maintErr = err
		}
	} else if step != 0 {
		// A clean install means the stream is healthy again; stop reporting
		// a stale failure.
		e.mstats.lastErr = ""
	}
	e.wakeLocked()
	return step != 0, err
}

// SyncMaintenance blocks until every sealed step of this stream is
// installed and committed, running the installs inline (so it also works in
// manual mode, and accelerates a backlogged async stream). It clears a
// sticky maintenance error and retries the stalled install; the first
// failure encountered is returned. In sync mode there is never pending
// work. Tests and checkpoint-like barriers call it to reach a quiesced,
// fully-merged state.
func (e *Engine) SyncMaintenance() error {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return ErrClosed
		}
		e.maintErr = nil
		n := len(e.sealed)
		e.mu.Unlock()
		if n == 0 {
			return nil
		}
		if _, err := e.runMaintenanceOnce(); err != nil {
			return err
		}
	}
}

// maintPending reports whether the stream has sealed steps awaiting
// installation and is not wedged on a sticky error.
func (e *Engine) maintPending() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return !e.closed && e.maintErr == nil && len(e.sealed) > 0
}

// scheduler is the DB-wide background maintenance executor: one bounded
// worker pool shared by every stream of a DB (or owned by a standalone
// async engine). Streams with pending installs queue FIFO; a worker pops a
// stream, installs exactly one sealed step, and re-queues the stream at the
// tail if it still has work — so a backlogged stream cannot starve the
// others, and per-stream installs stay in step order.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Engine
	queued  map[*Engine]bool
	running map[*Engine]bool
	dirty   map[*Engine]bool // enqueued while running; revisit on completion
	workers int
	closed  bool
	wg      sync.WaitGroup
}

func newScheduler(workers int) *scheduler {
	s := &scheduler{
		queued:  make(map[*Engine]bool),
		running: make(map[*Engine]bool),
		dirty:   make(map[*Engine]bool),
		workers: workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// enqueue schedules a stream for one install. Idempotent; a stream already
// being serviced is marked dirty and revisited when its current install
// finishes (per-stream installs never run concurrently).
func (s *scheduler) enqueue(e *Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.queued[e] {
		return
	}
	if s.running[e] {
		s.dirty[e] = true
		return
	}
	s.queued[e] = true
	s.queue = append(s.queue, e)
	s.cond.Signal()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		e := s.queue[0]
		s.queue = s.queue[1:]
		delete(s.queued, e)
		s.running[e] = true
		s.mu.Unlock()

		// Errors are recorded on the engine (sticky maintErr stalls the
		// stream until SyncMaintenance); the worker just moves on.
		e.runMaintenanceOnce() //nolint:errcheck // surfaced via engine state

		s.mu.Lock()
		delete(s.running, e)
		again := s.dirty[e]
		delete(s.dirty, e)
		s.mu.Unlock()
		if again || e.maintPending() {
			s.enqueue(e)
		}
	}
}

// close stops the workers after their current installs; queued work is
// abandoned (engines drain inline on Close).
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// SchedulerStats describes the DB-wide maintenance scheduler: pool
// occupancy plus the aggregate backlog (merge debt) across streams.
type SchedulerStats struct {
	// Workers is the pool size (0 when the DB runs synchronous or manual
	// maintenance).
	Workers int
	// QueuedStreams and RunningStreams count streams waiting for / holding
	// a worker.
	QueuedStreams  int
	RunningStreams int
	// PendingSteps and MergeDebt aggregate every stream's sealed backlog
	// (steps, elements).
	PendingSteps int
	MergeDebt    int64
	// Installs and Merges total the deferred installs and level merges
	// completed across all streams since open.
	Installs int
	Merges   int
	// MaintIO is the device-wide maintenance-attributed I/O.
	MaintIO IOStats
	// RegisteredStreams counts every stream in the directory;
	// HydratedStreams of those currently hold a memory-resident engine.
	// Only hydrated streams can contribute to the backlog above — eviction
	// seals a stream only after its backlog drains — so the hydrated count
	// bounds the scheduler's working set.
	RegisteredStreams int
	HydratedStreams   int
	// Hydrations and Evictions count engine loads and LRU seals since
	// Open — hydration is maintenance-adjacent work (each rehydration
	// replays the stream's summary-rebuild scan), so backlog dashboards
	// track it here alongside the merge debt.
	Hydrations uint64
	Evictions  uint64
}

// SchedulerStats returns the DB-wide maintenance picture: scheduler
// occupancy (for async DBs), aggregate backlog over the hydrated streams,
// and the directory's hydration/eviction counters. Cold streams have no
// backlog by construction and are never touched (no hydration storm from
// a stats poll).
func (db *DB) SchedulerStats() SchedulerStats {
	var out SchedulerStats
	if db.sched != nil {
		db.sched.mu.Lock()
		out.Workers = db.sched.workers
		out.QueuedStreams = len(db.sched.queue)
		out.RunningStreams = len(db.sched.running)
		db.sched.mu.Unlock()
	}
	ds := db.DirectoryStats()
	out.RegisteredStreams = ds.Registered
	out.HydratedStreams = ds.Hydrated
	out.Hydrations = ds.Hydrations
	out.Evictions = ds.Evictions
	ents, engs := db.pinHydrated()
	defer func() {
		for _, ent := range ents {
			db.release(ent)
		}
	}()
	for _, e := range engs {
		ms := e.MaintenanceStats()
		out.PendingSteps += ms.PendingSteps
		out.MergeDebt += ms.PendingElements
		out.Installs += ms.Installs
		out.Merges += ms.Merges
	}
	out.MaintIO = fromDisk(db.dev.MaintStats())
	return out
}

// WaitIdle blocks until every stream's maintenance backlog is drained and
// committed — a DB-wide quiescence barrier for tests, checkpoints and
// orderly shutdowns. Only hydrated streams can hold a backlog (eviction
// drains before sealing), so cold streams are skipped without hydrating
// them. It returns the first failure encountered (after attempting every
// stream).
func (db *DB) WaitIdle() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	ents, engs := db.pinHydrated()
	defer func() {
		for _, ent := range ents {
			db.release(ent)
		}
	}()
	var firstErr error
	for _, e := range engs {
		if err := e.SyncMaintenance(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
