package hsq

import (
	"testing"

	"repro/internal/workload"
)

// loadEngine fills an engine with deterministic data: steps batches plus an
// in-flight stream.
func loadEngine(t *testing.T, cfg Config, steps, batch, stream int) *Engine {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(42)
	for s := 0; s < steps; s++ {
		eng.ObserveSlice(workload.Fill(gen, batch))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, stream))
	return eng
}

// TestMemBackendMatchesFile: the same data through the same algorithm must
// give identical answers regardless of where blocks live.
func TestMemBackendMatchesFile(t *testing.T) {
	fileEng := loadEngine(t, Config{Epsilon: 0.02, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024}, 7, 3000, 1000)
	memEng := loadEngine(t, Config{Epsilon: 0.02, Kappa: 3, Backend: "mem", BlockSize: 1024}, 7, 3000, 1000)

	if fileEng.HistCount() != memEng.HistCount() || fileEng.PartitionCount() != memEng.PartitionCount() {
		t.Fatalf("layouts diverge: file %d/%d, mem %d/%d",
			fileEng.HistCount(), fileEng.PartitionCount(), memEng.HistCount(), memEng.PartitionCount())
	}
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		vf, qf, err := fileEng.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		vm, qm, err := memEng.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if vf != vm {
			t.Errorf("phi=%g: file=%d mem=%d", phi, vf, vm)
		}
		if qf.RandReads != qm.RandReads {
			t.Errorf("phi=%g: disk accesses diverge: file=%d mem=%d", phi, qf.RandReads, qm.RandReads)
		}
		qvf, err := fileEng.QuantileQuick(phi)
		if err != nil {
			t.Fatal(err)
		}
		qvm, err := memEng.QuantileQuick(phi)
		if err != nil {
			t.Fatal(err)
		}
		if qvf != qvm {
			t.Errorf("phi=%g quick: file=%d mem=%d", phi, qvf, qvm)
		}
	}
}

// TestConfigBackendValidation pins the Dir/Backend contract.
func TestConfigBackendValidation(t *testing.T) {
	if _, err := New(Config{Epsilon: 0.1}); err == nil {
		t.Error("file backend without Dir: want error")
	}
	if _, err := New(Config{Epsilon: 0.1, Backend: "mem"}); err != nil {
		t.Errorf("mem backend without Dir: %v", err)
	}
	if _, err := New(Config{Epsilon: 0.1, Backend: "tape", Dir: t.TempDir()}); err == nil {
		t.Error("unknown backend: want error")
	}
	if _, err := New(Config{Epsilon: 0.1, Backend: "mem", CacheBlocks: -1}); err == nil {
		t.Error("negative CacheBlocks: want error")
	}
}

// TestBlockCacheReducesQueryIO is the acceptance check for the cache: on
// the same store, a cached engine answers repeated accurate queries with
// strictly fewer backend random reads, and the absorbed probes show up as
// cache hits in QueryStats and IOStats.
func TestBlockCacheReducesQueryIO(t *testing.T) {
	phis := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	queryAll := func(eng *Engine) (randReads, cacheHits int) {
		t.Helper()
		for round := 0; round < 3; round++ {
			for _, phi := range phis {
				_, qs, err := eng.Quantile(phi)
				if err != nil {
					t.Fatal(err)
				}
				randReads += qs.RandReads
				cacheHits += qs.CacheHits
			}
		}
		return
	}

	// Memoization off: repeated rounds must reach the block layer for the
	// cache comparison to mean anything.
	cold := loadEngine(t, Config{Epsilon: 0.02, Kappa: 3, Backend: "mem", BlockSize: 512, ProbeMemoEntries: -1}, 7, 3000, 1000)
	warm := loadEngine(t, Config{Epsilon: 0.02, Kappa: 3, Backend: "mem", BlockSize: 512, CacheBlocks: 4096, ProbeMemoEntries: -1}, 7, 3000, 1000)

	coldReads, coldHits := queryAll(cold)
	warmReads, warmHits := queryAll(warm)

	if coldHits != 0 {
		t.Errorf("cache-off engine reported %d cache hits", coldHits)
	}
	if warmReads >= coldReads {
		t.Errorf("cache did not reduce disk accesses: %d with cache, %d without", warmReads, coldReads)
	}
	if warmHits == 0 {
		t.Error("cached engine reported no cache hits")
	}
	if warmReads+warmHits < coldReads {
		// Hits + misses must cover at least the uncached probe count: the
		// cache only removes I/O, never probes.
		t.Errorf("probe accounting lost probes: %d reads + %d hits < %d uncached reads",
			warmReads, warmHits, coldReads)
	}

	io := warm.DiskStats()
	if io.CacheHits == 0 || io.CacheHits < uint64(warmHits) {
		t.Errorf("engine IOStats.CacheHits = %d, want >= %d", io.CacheHits, warmHits)
	}
}

// TestIOStatsSubClamps is the regression test for the uint64 underflow when
// counters are reset between snapshots.
func TestIOStatsSubClamps(t *testing.T) {
	a := IOStats{SeqReads: 1, RandReads: 2, CacheHits: 3}
	b := IOStats{SeqReads: 5, SeqWrites: 5, RandReads: 5, CacheHits: 5, CacheMisses: 5}
	if d := a.Sub(b); d != (IOStats{}) {
		t.Errorf("a.Sub(b) with b > a = %+v, want all-zero", d)
	}
	d := b.Sub(a)
	want := IOStats{SeqReads: 4, SeqWrites: 5, RandReads: 3, CacheHits: 2, CacheMisses: 5}
	if d != want {
		t.Errorf("b.Sub(a) = %+v, want %+v", d, want)
	}
}

// TestMemEngineLifecycle: a mem engine supports the full API surface that
// does not require durability — windows, ranks, checkpoint, destroy.
func TestMemEngineLifecycle(t *testing.T) {
	eng := loadEngine(t, Config{Epsilon: 0.05, Kappa: 2, Backend: "mem", BlockSize: 512}, 5, 1000, 500)
	if _, _, err := eng.Rank(0); err != nil {
		t.Fatal(err)
	}
	wins := eng.AvailableWindows()
	if len(wins) == 0 {
		t.Fatal("no windows on mem engine")
	}
	if _, _, err := eng.WindowQuantile(0.5, wins[0]); err != nil {
		t.Fatal(err)
	}
	// Checkpoint writes the manifest to the mem backend (in-process only).
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Destroy(); err != nil {
		t.Fatal(err)
	}
}
