package hsq

import (
	"math"
	"testing"
	"time"

	"repro/internal/oracle"
	"repro/internal/workload"
)

// TestParallelQueryMatchesSerial: the §4 parallelization must not change
// answers, only overlap I/O.
func TestParallelQueryMatchesSerial(t *testing.T) {
	build := func(parallel bool) (*Engine, *oracle.Oracle) {
		eng, err := New(Config{
			Epsilon: 0.02, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024,
			ParallelQuery: parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewNormal(17)
		orc := oracle.New(0)
		for step := 0; step < 10; step++ {
			batch := workload.Fill(gen, 1000)
			eng.ObserveSlice(batch)
			orc.Add(batch...)
			if _, err := eng.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
		stream := workload.Fill(gen, 600)
		eng.ObserveSlice(stream)
		orc.Add(stream...)
		return eng, orc
	}
	serial, _ := build(false)
	parallel, orc := build(true)
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		sv, _, err := serial.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		pv, _, err := parallel.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if sv != pv {
			t.Errorf("phi=%g: serial %d != parallel %d", phi, sv, pv)
		}
		r := int64(math.Ceil(phi * float64(orc.Count())))
		if d := float64(orc.SpanError(r, pv)); d > 1.5*0.02*600+1 {
			t.Errorf("phi=%g: parallel error %g", phi, d)
		}
	}
}

// TestQueryIOBudget: a MaxReads cap must bound I/O, set Truncated when it
// bites, and degrade accuracy gracefully (answer stays within the filter
// spread of Lemma 4).
func TestQueryIOBudget(t *testing.T) {
	// Memoization off: the test re-queries the same φ against the same
	// snapshot, and a memo-resolved re-query costs no reads to cap.
	eng, err := New(Config{Epsilon: 0.005, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024, ProbeMemoEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(23)
	orc := oracle.New(0)
	for step := 0; step < 10; step++ {
		batch := workload.Fill(gen, 3000)
		eng.ObserveSlice(batch)
		orc.Add(batch...)
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	stream := workload.Fill(gen, 2000)
	eng.ObserveSlice(stream)
	orc.Add(stream...)

	// Find a target that needs several bisection iterations so a tiny cap
	// actually bites (some φ converge on the first probe).
	var phi float64
	var full QueryStats
	for _, cand := range []float64{0.5, 0.31, 0.62, 0.77, 0.13, 0.87, 0.41} {
		_, qs, err := eng.QuantileOpts(cand, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if qs.Truncated {
			t.Error("unbounded query should not be truncated")
		}
		if qs.Iterations >= 3 && qs.RandReads >= 4 {
			phi, full = cand, qs
			break
		}
	}
	if phi == 0 {
		t.Skip("no query at this scale needs multiple iterations; cannot exercise the budget")
	}

	// A cap of 1 must truncate.
	v, qs, err := eng.QuantileOpts(phi, QueryOpts{MaxReads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !qs.Truncated {
		t.Errorf("MaxReads=1: want Truncated, got %+v (full=%+v)", qs, full)
	}
	// Answer degrades but stays within the 4εN filter spread (Lemma 4).
	r := int64(math.Ceil(phi * float64(orc.Count())))
	n := float64(orc.Count())
	if d := float64(orc.SpanError(r, v)); d > 4*0.005*n {
		t.Errorf("truncated answer error %g beyond filter spread %g", d, 4*0.005*n)
	}

	// A generous cap must not truncate and must match the unbounded answer.
	v2, qs2, err := eng.QuantileOpts(phi, QueryOpts{MaxReads: 10 * full.RandReads})
	if err != nil {
		t.Fatal(err)
	}
	if qs2.Truncated {
		t.Errorf("generous cap truncated: %+v", qs2)
	}
	vFull, _, err := eng.QuantileOpts(phi, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != vFull {
		t.Errorf("generous cap answer %d != unbounded %d", v2, vFull)
	}
}

// TestBudgetExcludesCacheAndMemoHits pins the budget-accounting rule: only
// reads that reach the storage backend spend MaxReads. Probes absorbed by
// the block cache or the snapshot's rank-probe memo are the absence of an
// access, so a warm repeat of a query that cold needs many reads completes
// untruncated under MaxReads=1.
func TestBudgetExcludesCacheAndMemoHits(t *testing.T) {
	phis := []float64{0.25, 0.5, 0.75, 0.9, 0.99}
	run := func(t *testing.T, cfg Config, wantMemo bool) {
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewUniform(37)
		for step := 0; step < 10; step++ {
			eng.ObserveSlice(workload.Fill(gen, 3000))
			if _, err := eng.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
		eng.ObserveSlice(workload.Fill(gen, 2000))

		cold, cqs, err := eng.QuantilesOpts(phis, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if cqs.RandReads == 0 {
			t.Fatal("cold query hit no backend reads; budget test is vacuous")
		}
		warm, wqs, err := eng.QuantilesOpts(phis, QueryOpts{MaxReads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if wqs.Truncated {
			t.Errorf("warm repeat truncated under MaxReads=1: %+v (cold %+v)", wqs, cqs)
		}
		if wqs.RandReads > 1 {
			t.Errorf("warm repeat spent %d backend reads over a budget of 1", wqs.RandReads)
		}
		if wantMemo {
			if wqs.MemoHits == 0 || wqs.MemoHits != wqs.Iterations {
				t.Errorf("warm repeat: %d memo hits over %d probes; want every probe memoized", wqs.MemoHits, wqs.Iterations)
			}
		} else if wqs.CacheHits == 0 {
			t.Errorf("warm repeat hit the block cache 0 times: %+v", wqs)
		}
		for i := range cold {
			if warm[i] != cold[i] {
				t.Errorf("phi=%g: warm answer %d != cold %d", phis[i], warm[i], cold[i])
			}
		}
	}
	t.Run("memo", func(t *testing.T) {
		run(t, Config{Epsilon: 0.005, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024}, true)
	})
	t.Run("block-cache", func(t *testing.T) {
		// Memoization off: the repeat must re-descend the cursors, and the
		// block cache alone absorbs the reads.
		run(t, Config{Epsilon: 0.005, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024,
			CacheBlocks: 4096, ProbeMemoEntries: -1}, false)
	})
}

// TestIOBudgetTradeoffMonotone sweeps the cap and checks that allowed reads
// never exceed it (plus the final iteration's in-flight reads).
func TestIOBudgetTradeoffMonotone(t *testing.T) {
	eng, err := New(Config{Epsilon: 0.002, Kappa: 3, Dir: t.TempDir(), BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(29)
	for step := 0; step < 12; step++ {
		eng.ObserveSlice(workload.Fill(gen, 4000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 2000))
	parts := eng.PartitionCount()
	for _, cap := range []int{1, 2, 4, 8, 16, 32} {
		_, qs, err := eng.QuantileOpts(0.5, QueryOpts{MaxReads: cap})
		if err != nil {
			t.Fatal(err)
		}
		// The cap is checked between iterations; one iteration can add at
		// most ~log(blocks) reads per partition. Bound loosely.
		slack := parts * 16
		if qs.RandReads > cap+slack {
			t.Errorf("cap %d: %d reads", cap, qs.RandReads)
		}
	}
}

// TestMergeWorkersEquivalence: parallel level merges must leave queries
// byte-identical to serial merges.
func TestMergeWorkersEquivalence(t *testing.T) {
	build := func(workers int) *Engine {
		eng, err := New(Config{
			Epsilon: 0.05, Kappa: 2, Dir: t.TempDir(), BlockSize: 1024,
			MergeWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewNormal(51)
		for step := 0; step < 9; step++ {
			eng.ObserveSlice(workload.Fill(gen, 800))
			if _, err := eng.EndStep(); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}
	serial, parallel := build(1), build(4)
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		sv, _, err := serial.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		pv, _, err := parallel.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if sv != pv {
			t.Errorf("phi=%g: serial %d != parallel-merge %d", phi, sv, pv)
		}
	}
}

// TestSimulateDisk: latency profiles slow queries proportionally to I/O and
// invalid profiles are rejected.
func TestSimulateDisk(t *testing.T) {
	if _, err := New(Config{Epsilon: 0.1, Dir: t.TempDir(), SimulateDisk: "floppy"}); err == nil {
		t.Error("unknown profile: want error")
	}
	eng, err := New(Config{Epsilon: 0.02, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024, SimulateDisk: "hdd"})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(71)
	for step := 0; step < 4; step++ {
		eng.ObserveSlice(workload.Fill(gen, 1500))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	_, qs, err := eng.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if qs.RandReads > 0 {
		// Each random read is charged ~1ms under the HDD profile.
		wantMin := time.Duration(qs.RandReads) * time.Millisecond
		if qs.Elapsed < wantMin {
			t.Errorf("HDD-simulated query took %v for %d reads; want ≥ %v", qs.Elapsed, qs.RandReads, wantMin)
		}
	}
}
