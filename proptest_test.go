package hsq_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	hsq "repro"
	"repro/internal/oracle"
	"repro/internal/workload"
)

// TestPropertyDifferential drives random interleavings of Observe, EndStep,
// Quantile, QuantileQuick, Rank and RankQuick against the exact oracle, one
// subtest per paper workload generator. Every decision — batch sizes, step
// boundaries, query targets — comes from one seeded source, so any failure
// is reproducible: the failure log prints the seed and the trailing
// operation log, and HSQ_PROP_SEED replays a specific seed.
func TestPropertyDifferential(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("HSQ_PROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad HSQ_PROP_SEED %q: %v", s, err)
		}
		seed = v
	}
	for i, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runDifferential(t, name, seed+int64(i))
		})
	}
}

// opLog is a bounded trail of executed operations, printed on failure so a
// reproduction does not need a debugger.
type opLog struct {
	ops []string
}

func (l *opLog) add(format string, args ...any) {
	l.ops = append(l.ops, fmt.Sprintf(format, args...))
	if len(l.ops) > 40 {
		l.ops = l.ops[1:]
	}
}

func (l *opLog) String() string { return strings.Join(l.ops, "\n") }

func runDifferential(t *testing.T, wname string, seed int64) {
	const eps = 0.05
	eng, err := hsq.New(hsq.Config{Epsilon: eps, Kappa: 3, Backend: "mem", BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Destroy() //nolint:errcheck // in-memory state dies anyway
	gen, err := workload.ByName(wname, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	or := oracle.New(1 << 14)
	var log opLog

	fail := func(op int, format string, args ...any) {
		t.Helper()
		t.Fatalf("workload=%s seed=%d op=%d: %s\n(replay with HSQ_PROP_SEED; trailing ops:)\n%s",
			wname, seed, op, fmt.Sprintf(format, args...), log.String())
	}

	for op := 0; op < 400; op++ {
		n := or.Count()
		m := eng.StreamCount()
		switch k := rng.Intn(10); {
		case k <= 4: // observe a batch
			batch := workload.Fill(gen, 1+rng.Intn(100))
			eng.ObserveSlice(batch)
			or.Add(batch...)
			log.add("observe %d elements", len(batch))
		case k == 5: // end the step
			if _, err := eng.EndStep(); err != nil {
				fail(op, "EndStep: %v", err)
			}
			log.add("endstep (n=%d)", or.Count())
		case k <= 7: // quantile, accurate or quick
			if n == 0 {
				continue
			}
			phi := rng.Float64()
			if phi == 0 {
				phi = 0.5
			}
			target := int64(math.Ceil(phi * float64(n)))
			if target < 1 {
				target = 1
			}
			if k == 6 {
				v, _, err := eng.Quantile(phi)
				if err != nil {
					fail(op, "Quantile(%g): %v", phi, err)
				}
				log.add("quantile %g -> %d", phi, v)
				// Theorem 2 via Lemma 5: the bisection accepts within ε·m of
				// the target, the stream estimate itself errs by up to ε₂·m
				// (= ε·m/4), and snapping to a known element costs a little
				// more discreteness — O(ε·m) total, asserted as 1.25·ε·m+2.
				if se := or.SpanError(target, v); se > int64(1.25*eps*float64(m))+2 {
					fail(op, "Quantile(%g) = %d: rank error %d > 1.25·ε·m = %g (n=%d m=%d)", phi, v, se, 1.25*eps*float64(m), n, m)
				}
			} else {
				v, err := eng.QuantileQuick(phi)
				if err != nil {
					fail(op, "QuantileQuick(%g): %v", phi, err)
				}
				log.add("quick quantile %g -> %d", phi, v)
				// Lemma 3: quick rank error ≤ 1.5·ε·N.
				if se := or.SpanError(target, v); se > int64(1.5*eps*float64(n))+1 {
					fail(op, "QuantileQuick(%g) = %d: rank error %d > 1.5·ε·N = %g (n=%d)", phi, v, se, 1.5*eps*float64(n), n)
				}
			}
		default: // rank, accurate or quick
			if n == 0 {
				continue
			}
			v := gen.Next()
			or.Add(v)
			eng.Observe(v) // keep oracle and engine identical
			want := or.Rank(v)
			if k == 8 {
				got, _, err := eng.Rank(v)
				if err != nil {
					fail(op, "Rank(%d): %v", v, err)
				}
				log.add("rank %d -> %d (want %d)", v, got, want)
				if d := abs64(got - want); d > int64(eps*float64(m+1))+1 {
					fail(op, "Rank(%d) = %d, oracle %d: error %d > ε·m (m=%d)", v, got, want, d, m+1)
				}
			} else {
				got, err := eng.RankQuick(v)
				if err != nil {
					fail(op, "RankQuick(%d): %v", v, err)
				}
				log.add("quick rank %d -> %d (want %d)", v, got, want)
				if d := abs64(got - want); d > int64(2*eps*float64(n+1))+1 {
					fail(op, "RankQuick(%d) = %d, oracle %d: error %d > 2·ε·N (n=%d)", v, got, want, d, n+1)
				}
			}
		}
	}
}

// TestPropertyMultiQuantiles drives the shared multi-target sweep and the
// per-snapshot probe memo against the oracle across random Observe /
// EndStep / Quantiles interleavings, in both maintenance modes. Every
// answer of a k-target call must meet the same Theorem 2 bound as a
// single-target Quantile, and every call is immediately re-issued to
// exercise the memoized path. In sync mode nothing can publish between the
// two calls, so the repeat must be bit-identical, resolve every probe from
// the memo and spend zero backend reads; in async mode background merges
// may publish a new version (with a fresh memo) at any point, so the
// repeat only has to stay within the error bound.
func TestPropertyMultiQuantiles(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("HSQ_PROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad HSQ_PROP_SEED %q: %v", s, err)
		}
		seed = v
	}
	for i, mode := range []string{"sync", "async"} {
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			runMultiDifferential(t, mode, seed+100*int64(i))
		})
	}
}

func runMultiDifferential(t *testing.T, mode string, seed int64) {
	const eps = 0.05
	eng, err := hsq.New(hsq.Config{
		Epsilon: eps, Kappa: 3, Backend: "mem", BlockSize: 1024, Maintenance: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Destroy() //nolint:errcheck // in-memory state dies anyway
	gen, err := workload.ByName("uniform", seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	or := oracle.New(1 << 14)
	var log opLog

	fail := func(op int, format string, args ...any) {
		t.Helper()
		t.Fatalf("mode=%s seed=%d op=%d: %s\n(replay with HSQ_PROP_SEED; trailing ops:)\n%s",
			mode, seed, op, fmt.Sprintf(format, args...), log.String())
	}
	checkBound := func(op int, call string, phis []float64, vs []int64, n int64, m int64) {
		t.Helper()
		for i, phi := range phis {
			target := int64(math.Ceil(phi * float64(n)))
			if target < 1 {
				target = 1
			}
			if se := or.SpanError(target, vs[i]); se > int64(1.25*eps*float64(m))+2 {
				fail(op, "%s phi=%g = %d: rank error %d > 1.25·ε·m = %g (n=%d m=%d)",
					call, phi, vs[i], se, 1.25*eps*float64(m), n, m)
			}
		}
	}

	for op := 0; op < 300; op++ {
		switch k := rng.Intn(10); {
		case k <= 4: // observe a batch
			batch := workload.Fill(gen, 1+rng.Intn(100))
			eng.ObserveSlice(batch)
			or.Add(batch...)
			log.add("observe %d elements", len(batch))
		case k == 5: // end the step
			if _, err := eng.EndStep(); err != nil {
				fail(op, "EndStep: %v", err)
			}
			log.add("endstep (n=%d)", or.Count())
		case k == 6 && mode == "async": // force pending publishes to land
			if err := eng.SyncMaintenance(); err != nil {
				fail(op, "SyncMaintenance: %v", err)
			}
			log.add("sync maintenance")
		default: // multi-target Quantiles, issued twice back to back
			n := or.Count()
			if n == 0 {
				continue
			}
			// The accept band scales with the stream portion: live stream
			// plus sealed-but-uninstalled steps (async mode's merge debt).
			// A background install landing after this read only shrinks the
			// true portion, so the bound below stays an upper bound.
			m := eng.StreamCount() + eng.MaintenanceStats().PendingElements
			phis := make([]float64, 1+rng.Intn(5))
			for i := range phis {
				phis[i] = rng.Float64()
				if phis[i] == 0 {
					phis[i] = 0.5
				}
			}
			first, fqs, err := eng.Quantiles(phis)
			if err != nil {
				fail(op, "Quantiles(%v): %v", phis, err)
			}
			log.add("quantiles %v -> %v (probes=%d reads=%d)", phis, first, fqs.Iterations, fqs.RandReads)
			checkBound(op, "Quantiles", phis, first, n, m)
			second, sqs, err := eng.Quantiles(phis)
			if err != nil {
				fail(op, "repeat Quantiles(%v): %v", phis, err)
			}
			log.add("repeat -> %v (reads=%d memoHits=%d)", second, sqs.RandReads, sqs.MemoHits)
			checkBound(op, "repeat Quantiles", phis, second, n, m)
			if mode == "sync" {
				// Same snapshot, same φ set: the memo must replay the whole
				// bisection without touching the store.
				for i := range first {
					if second[i] != first[i] {
						fail(op, "repeat Quantiles(%v): answer %d changed %d -> %d on an unchanged snapshot",
							phis, i, first[i], second[i])
					}
				}
				if sqs.RandReads != 0 {
					fail(op, "repeat Quantiles(%v) spent %d backend reads; want 0 (first %+v)", phis, sqs.RandReads, fqs)
				}
				if sqs.MemoHits != sqs.Iterations {
					fail(op, "repeat Quantiles(%v): %d memo hits over %d probes; want all", phis, sqs.MemoHits, sqs.Iterations)
				}
			}
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
