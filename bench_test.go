// Benchmarks: one macro-benchmark per paper figure (regenerating the
// figure's measurement loop at bench scale) plus micro-benchmarks for the
// hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// For full-scale figure regeneration use cmd/hsqbench instead; these benches
// exist so `go test -bench` exercises every experiment end to end.
package hsq_test

import (
	"fmt"
	"io"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/disk"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchScale keeps figure benches fast while still touching disk, merges
// and queries.
var benchScale = experiments.Scale{
	Name: "bench", Steps: 6, BatchSize: 2000, StreamSize: 2000,
	Repeats: 1, MemFractions: []float64{0.2},
	Kappas: []int{2, 3}, BlockSize: 1024,
	Datasets: []string{"uniform"},
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchScale, io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Accuracy(b *testing.B)        { benchFigure(b, "4") }
func BenchmarkFig5AccuracyVsKappa(b *testing.B) { benchFigure(b, "5") }
func BenchmarkFig6UpdateTime(b *testing.B)      { benchFigure(b, "6") }
func BenchmarkFig7UpdateVsKappa(b *testing.B)   { benchFigure(b, "7") }
func BenchmarkFig8DiskAccessCDF(b *testing.B)   { benchFigure(b, "8") }
func BenchmarkFig9QueryVsMemory(b *testing.B)   { benchFigure(b, "9") }
func BenchmarkFig10QueryVsKappa(b *testing.B)   { benchFigure(b, "10") }
func BenchmarkFig11Windows(b *testing.B)        { benchFigure(b, "11") }
func BenchmarkFig12HistScaling(b *testing.B)    { benchFigure(b, "12") }
func BenchmarkFig13StreamScaling(b *testing.B)  { benchFigure(b, "13") }
func BenchmarkAblationSplit(b *testing.B)       { benchFigure(b, "ablation-split") }
func BenchmarkAblationPinning(b *testing.B)     { benchFigure(b, "ablation-pinning") }
func BenchmarkAblationIOBudget(b *testing.B)    { benchFigure(b, "ablation-iobudget") }
func BenchmarkAblationBaselines(b *testing.B)   { benchFigure(b, "baselines") }
func BenchmarkTheoryComparison(b *testing.B)    { benchFigure(b, "theory") }

// --- micro-benchmarks --------------------------------------------------

// benchEngine builds a loaded engine for query benchmarks.
func benchEngine(b *testing.B, eps float64, steps, batch, stream int) *hsq.Engine {
	b.Helper()
	eng, err := hsq.New(hsq.Config{Epsilon: eps, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(1)
	for s := 0; s < steps; s++ {
		eng.ObserveSlice(workload.Fill(gen, batch))
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, stream))
	return eng
}

func BenchmarkObserve(b *testing.B) {
	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(2)
	vals := workload.Fill(gen, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Observe(vals[i&(1<<16-1)])
	}
}

func BenchmarkEndStep(b *testing.B) {
	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(3)
	batch := workload.Fill(gen, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ObserveSlice(batch)
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccurateQuery(b *testing.B) {
	eng := benchEngine(b, 0.01, 10, 20000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := 0.1 + 0.8*float64(i%9)/9
		if _, _, err := eng.Quantile(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccurateQueryParallel(b *testing.B) {
	eng, err := hsq.New(hsq.Config{
		Epsilon: 0.01, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096, ParallelQuery: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(4)
	for s := 0; s < 10; s++ {
		eng.ObserveSlice(workload.Fill(gen, 20000))
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := 0.1 + 0.8*float64(i%9)/9
		if _, _, err := eng.Quantile(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuickQuery(b *testing.B) {
	eng := benchEngine(b, 0.01, 10, 20000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := 0.1 + 0.8*float64(i%9)/9
		if _, err := eng.QuantileQuick(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	eng := benchEngine(b, 0.01, 13, 10000, 2000)
	wins := eng.AvailableWindows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.WindowQuantile(0.5, wins[i%len(wins)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCached quantifies the block cache on the accurate-query
// path: the same store (mem backend, simulated HDD latency so wall-clock
// tracks the paper's I/O cost model) is queried with the cache off and on.
// Expect cache=on to cut both ns/op and randReads/op sharply once the hot
// blocks are resident.
func BenchmarkQueryCached(b *testing.B) {
	for _, cacheBlocks := range []int{0, 4096} {
		b.Run(fmt.Sprintf("cache=%d", cacheBlocks), func(b *testing.B) {
			eng, err := hsq.New(hsq.Config{
				Epsilon: 0.01, Kappa: 10, Backend: "mem", BlockSize: 4096,
				CacheBlocks: cacheBlocks, SimulateDisk: "hdd",
			})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewUniform(6)
			for s := 0; s < 10; s++ {
				eng.ObserveSlice(workload.Fill(gen, 20000))
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			eng.ObserveSlice(workload.Fill(gen, 5000))
			io0 := eng.DiskStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi := 0.1 + 0.8*float64(i%9)/9
				if _, _, err := eng.Quantile(phi); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := eng.DiskStats().Sub(io0)
			b.ReportMetric(float64(d.RandReads)/float64(b.N), "randReads/op")
			b.ReportMetric(float64(d.CacheHits)/float64(b.N), "cacheHits/op")
		})
	}
}

// BenchmarkQuantilesMultiTarget measures the shared multi-target sweep for
// k ∈ {1, 3, 9}: one Quantiles call per op, memoization off so every op
// pays the full bisection. Compare probes/op across k against k× the k=1
// figure to see the sharing.
func BenchmarkQuantilesMultiTarget(b *testing.B) {
	sets := map[int][]float64{
		1: {0.5},
		3: {0.25, 0.5, 0.75},
		9: {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 0.99},
	}
	for _, k := range []int{1, 3, 9} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			eng, err := hsq.New(hsq.Config{
				Epsilon: 0.01, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096,
				ProbeMemoEntries: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewUniform(7)
			for s := 0; s < 10; s++ {
				eng.ObserveSlice(workload.Fill(gen, 20000))
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			eng.ObserveSlice(workload.Fill(gen, 5000))
			phis := sets[k]
			probes, reads := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, qs, err := eng.Quantiles(phis)
				if err != nil {
					b.Fatal(err)
				}
				probes += qs.Iterations
				reads += qs.RandReads
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
			b.ReportMetric(float64(reads)/float64(b.N), "randReads/op")
		})
	}
}

// BenchmarkRepeatedDashboardPoll is the canonical memo workload: the same φ
// set polled against an unchanged snapshot. The first poll pays the
// bisection; every later op should resolve entirely from the version's
// rank-probe memo (randReads/op → 0).
func BenchmarkRepeatedDashboardPoll(b *testing.B) {
	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(8)
	for s := 0; s < 10; s++ {
		eng.ObserveSlice(workload.Fill(gen, 20000))
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 5000))
	phis := []float64{0.5, 0.9, 0.99}
	if _, _, err := eng.Quantiles(phis); err != nil { // warm the memo
		b.Fatal(err)
	}
	reads, hits := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, qs, err := eng.Quantiles(phis)
		if err != nil {
			b.Fatal(err)
		}
		reads += qs.RandReads
		hits += qs.MemoHits
	}
	b.ReportMetric(float64(reads)/float64(b.N), "randReads/op")
	b.ReportMetric(float64(hits)/float64(b.N), "memoHits/op")
}

// BenchmarkUpdateAmortized reports the per-element amortized loading cost
// across enough steps to include multi-level merges (Lemma 6).
func BenchmarkUpdateAmortized(b *testing.B) {
	for _, kappa := range []int{2, 10} {
		b.Run(fmt.Sprintf("kappa=%d", kappa), func(b *testing.B) {
			eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: kappa, Dir: b.TempDir(), BlockSize: 4096})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewUniform(5)
			batch := workload.Fill(gen, 5000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ObserveSlice(batch)
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			io := eng.DiskStats()
			b.ReportMetric(float64(io.Total())/float64(b.N), "blockIO/step")
		})
	}
}

// BenchmarkColumnarScan compares a full sequential scan of a sorted file in
// the raw format against the delta-compressed columnar format. Columnar
// files pack many more elements per block, so the same data costs fewer
// block transfers — the metric that matters under the paper's cost model.
func BenchmarkColumnarScan(b *testing.B) {
	const n = 1 << 18
	vals := make([]int64, n)
	v := int64(0)
	gen := workload.NewUniform(7)
	for i := range vals {
		v += gen.Next() & 0xff // sorted, small deltas: the columnar sweet spot
		vals[i] = v
	}
	for _, format := range []disk.BlockFormat{disk.FormatRaw, disk.FormatColumnar} {
		b.Run("format="+format.String(), func(b *testing.B) {
			m, err := disk.NewManagerOn(disk.NewMemBackend(), 4096)
			if err != nil {
				b.Fatal(err)
			}
			w, err := m.CreateFormat("scan.dat", format)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.AppendSlice(vals); err != nil {
				b.Fatal(err)
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			io0 := m.Stats()
			b.SetBytes(n * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := m.OpenSequential("scan.dat")
				if err != nil {
					b.Fatal(err)
				}
				r.SetReadahead(disk.MergeReadahead)
				for {
					_, ok, err := r.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := m.Stats().Sub(io0)
			b.ReportMetric(float64(d.SeqReads)/float64(b.N), "blocks/scan")
		})
	}
}

// BenchmarkBlockSkip compares accurate-query throughput between the raw and
// columnar formats at an equal decoded-bytes cache budget. Columnar wins
// twice: bisection steps resolved from block-header min/max bounds cost
// nothing, and each read block covers more of the value domain.
func BenchmarkBlockSkip(b *testing.B) {
	for _, format := range []string{"raw", "columnar"} {
		b.Run("format="+format, func(b *testing.B) {
			eng, err := hsq.New(hsq.Config{
				Epsilon: 0.01, Kappa: 10, Backend: "mem", BlockSize: 4096,
				CacheBlocks: 8, SimulateDisk: "hdd", BlockFormat: format,
			})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewUniform(8)
			for s := 0; s < 10; s++ {
				eng.ObserveSlice(workload.Fill(gen, 20000))
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			eng.ObserveSlice(workload.Fill(gen, 5000))
			io0 := eng.DiskStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi := 0.1 + 0.8*float64(i%9)/9
				if _, _, err := eng.Quantile(phi); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := eng.DiskStats().Sub(io0)
			b.ReportMetric(float64(d.RandReads)/float64(b.N), "randReads/op")
			b.ReportMetric(float64(d.SkippedBlocks)/float64(b.N), "skips/op")
		})
	}
}

// --- maintenance benchmarks ---------------------------------------------

// maintBenchConfig builds the sync-vs-async comparison engine: κ=2 so
// merges cascade constantly, simulated SSD latency so the inline
// sort+merge cost is the device's rather than the allocator's.
func maintBenchConfig(mode string) hsq.Config {
	cfg := hsq.Config{
		Epsilon: 0.01, Kappa: 2, Backend: "mem", BlockSize: 4096,
		SimulateDisk: "ssd", Maintenance: mode,
	}
	if mode == "async" {
		cfg.MaxPendingSteps = 8
		cfg.MaintenanceWorkers = 2
	}
	return cfg
}

func reportP99(b *testing.B, lat []time.Duration, name string) {
	b.Helper()
	if len(lat) == 0 {
		return
	}
	slices.Sort(lat)
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), name)
}

// BenchmarkIngestStall measures the write path's tail latency across step
// boundaries: a producer observes continuously while the bench loop closes
// steps. With synchronous maintenance every EndStep stalls concurrent
// Observes for the whole sort+merge; with the async scheduler Observe p99
// collapses to the cost of the engine lock hand-off (the seal happens off
// the observers' lock).
func BenchmarkIngestStall(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run("maintenance="+mode, func(b *testing.B) {
			eng, err := hsq.New(maintBenchConfig(mode))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close() //nolint:errcheck
			gen := workload.NewUniform(21)
			vals := workload.Fill(gen, 1<<16)

			// Low-rate latency probe: one Observe every ~200µs, so the batch
			// volume stays owned by the bench loop while the probe samples
			// how long an Observe waits behind a step boundary.
			var (
				stop atomic.Bool
				wg   sync.WaitGroup
				mu   sync.Mutex
				lat  []time.Duration
			)
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for !stop.Load() {
					t0 := time.Now()
					eng.Observe(vals[i&(1<<16-1)])
					d := time.Since(t0)
					mu.Lock()
					lat = append(lat, d)
					mu.Unlock()
					i++
					time.Sleep(200 * time.Microsecond)
				}
			}()

			batch := workload.Fill(gen, 4000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ObserveSlice(batch)
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			if err := eng.SyncMaintenance(); err != nil {
				b.Fatal(err)
			}
			mu.Lock()
			reportP99(b, lat, "p99-observe-ns")
			mu.Unlock()
		})
	}
}

// BenchmarkQueryDuringMerge measures accurate-query latency while installs
// and κ-way merges run: a producer keeps closing steps (κ=2, so cascades
// are constant) while the bench loop queries. Synchronous maintenance makes
// queries wait out whole merges; snapshot-isolated reads over the async
// scheduler keep them flat.
func BenchmarkQueryDuringMerge(b *testing.B) {
	for _, mode := range []string{"sync", "async"} {
		b.Run("maintenance="+mode, func(b *testing.B) {
			eng, err := hsq.New(maintBenchConfig(mode))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close() //nolint:errcheck
			gen := workload.NewUniform(22)
			for s := 0; s < 6; s++ {
				eng.ObserveSlice(workload.Fill(gen, 4000))
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					eng.ObserveSlice(workload.Fill(gen, 4000))
					if _, err := eng.EndStep(); err != nil {
						return
					}
				}
			}()

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi := 0.1 + 0.8*float64(i%9)/9
				t0 := time.Now()
				if _, _, err := eng.Quantile(phi); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			stop.Store(true)
			wg.Wait()
			if err := eng.SyncMaintenance(); err != nil {
				b.Fatal(err)
			}
			reportP99(b, lat, "p99-query-ns")
		})
	}
}
