// Benchmarks: one macro-benchmark per paper figure (regenerating the
// figure's measurement loop at bench scale) plus micro-benchmarks for the
// hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// For full-scale figure regeneration use cmd/hsqbench instead; these benches
// exist so `go test -bench` exercises every experiment end to end.
package hsq_test

import (
	"fmt"
	"io"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchScale keeps figure benches fast while still touching disk, merges
// and queries.
var benchScale = experiments.Scale{
	Name: "bench", Steps: 6, BatchSize: 2000, StreamSize: 2000,
	Repeats: 1, MemFractions: []float64{0.2},
	Kappas: []int{2, 3}, BlockSize: 1024,
	Datasets: []string{"uniform"},
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchScale, io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Accuracy(b *testing.B)        { benchFigure(b, "4") }
func BenchmarkFig5AccuracyVsKappa(b *testing.B) { benchFigure(b, "5") }
func BenchmarkFig6UpdateTime(b *testing.B)      { benchFigure(b, "6") }
func BenchmarkFig7UpdateVsKappa(b *testing.B)   { benchFigure(b, "7") }
func BenchmarkFig8DiskAccessCDF(b *testing.B)   { benchFigure(b, "8") }
func BenchmarkFig9QueryVsMemory(b *testing.B)   { benchFigure(b, "9") }
func BenchmarkFig10QueryVsKappa(b *testing.B)   { benchFigure(b, "10") }
func BenchmarkFig11Windows(b *testing.B)        { benchFigure(b, "11") }
func BenchmarkFig12HistScaling(b *testing.B)    { benchFigure(b, "12") }
func BenchmarkFig13StreamScaling(b *testing.B)  { benchFigure(b, "13") }
func BenchmarkAblationSplit(b *testing.B)       { benchFigure(b, "ablation-split") }
func BenchmarkAblationPinning(b *testing.B)     { benchFigure(b, "ablation-pinning") }
func BenchmarkAblationIOBudget(b *testing.B)    { benchFigure(b, "ablation-iobudget") }
func BenchmarkAblationBaselines(b *testing.B)   { benchFigure(b, "baselines") }
func BenchmarkTheoryComparison(b *testing.B)    { benchFigure(b, "theory") }

// --- micro-benchmarks --------------------------------------------------

// benchEngine builds a loaded engine for query benchmarks.
func benchEngine(b *testing.B, eps float64, steps, batch, stream int) *hsq.Engine {
	b.Helper()
	eng, err := hsq.New(hsq.Config{Epsilon: eps, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(1)
	for s := 0; s < steps; s++ {
		eng.ObserveSlice(workload.Fill(gen, batch))
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, stream))
	return eng
}

func BenchmarkObserve(b *testing.B) {
	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(2)
	vals := workload.Fill(gen, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Observe(vals[i&(1<<16-1)])
	}
}

func BenchmarkEndStep(b *testing.B) {
	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(3)
	batch := workload.Fill(gen, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ObserveSlice(batch)
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccurateQuery(b *testing.B) {
	eng := benchEngine(b, 0.01, 10, 20000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := 0.1 + 0.8*float64(i%9)/9
		if _, _, err := eng.Quantile(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccurateQueryParallel(b *testing.B) {
	eng, err := hsq.New(hsq.Config{
		Epsilon: 0.01, Kappa: 10, Dir: b.TempDir(), BlockSize: 4096, ParallelQuery: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniform(4)
	for s := 0; s < 10; s++ {
		eng.ObserveSlice(workload.Fill(gen, 20000))
		if _, err := eng.EndStep(); err != nil {
			b.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 5000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := 0.1 + 0.8*float64(i%9)/9
		if _, _, err := eng.Quantile(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuickQuery(b *testing.B) {
	eng := benchEngine(b, 0.01, 10, 20000, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := 0.1 + 0.8*float64(i%9)/9
		if _, err := eng.QuantileQuick(phi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	eng := benchEngine(b, 0.01, 13, 10000, 2000)
	wins := eng.AvailableWindows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.WindowQuantile(0.5, wins[i%len(wins)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCached quantifies the block cache on the accurate-query
// path: the same store (mem backend, simulated HDD latency so wall-clock
// tracks the paper's I/O cost model) is queried with the cache off and on.
// Expect cache=on to cut both ns/op and randReads/op sharply once the hot
// blocks are resident.
func BenchmarkQueryCached(b *testing.B) {
	for _, cacheBlocks := range []int{0, 4096} {
		b.Run(fmt.Sprintf("cache=%d", cacheBlocks), func(b *testing.B) {
			eng, err := hsq.New(hsq.Config{
				Epsilon: 0.01, Kappa: 10, Backend: "mem", BlockSize: 4096,
				CacheBlocks: cacheBlocks, SimulateDisk: "hdd",
			})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewUniform(6)
			for s := 0; s < 10; s++ {
				eng.ObserveSlice(workload.Fill(gen, 20000))
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			eng.ObserveSlice(workload.Fill(gen, 5000))
			io0 := eng.DiskStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi := 0.1 + 0.8*float64(i%9)/9
				if _, _, err := eng.Quantile(phi); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			d := eng.DiskStats().Sub(io0)
			b.ReportMetric(float64(d.RandReads)/float64(b.N), "randReads/op")
			b.ReportMetric(float64(d.CacheHits)/float64(b.N), "cacheHits/op")
		})
	}
}

// BenchmarkUpdateAmortized reports the per-element amortized loading cost
// across enough steps to include multi-level merges (Lemma 6).
func BenchmarkUpdateAmortized(b *testing.B) {
	for _, kappa := range []int{2, 10} {
		b.Run(fmt.Sprintf("kappa=%d", kappa), func(b *testing.B) {
			eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: kappa, Dir: b.TempDir(), BlockSize: 4096})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewUniform(5)
			batch := workload.Fill(gen, 5000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ObserveSlice(batch)
				if _, err := eng.EndStep(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			io := eng.DiskStats()
			b.ReportMetric(float64(io.Total())/float64(b.N), "blockIO/step")
		})
	}
}
