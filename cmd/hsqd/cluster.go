package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// This file is hsqd's coordinator mode: the handlers and forwarding glue
// that turn any node of a -cluster-peers deployment into a full front
// door. Writes for streams this node does not store are forwarded to the
// owning shard over the wire protocol; reads for such streams are answered
// from a member's shard summary; /cluster/quantile merges shard summaries
// across streams into one combined answer (the paper's summary-merge
// query, Section 6, applied across nodes).

// handleHealthz is the liveness probe: it touches no locks and no stats,
// so it answers even while ingest, maintenance and stats endpoints are
// busy. The body is fixed.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n") //nolint:errcheck
}

// handleCluster reports the cluster configuration and this node's view of
// it: membership epoch (mismatched epochs across nodes mean a botched
// rolling restart), placement counts for locally known streams, and the
// relay channels' replication lag (pending = frames applied here but not
// yet acknowledged by a follower).
func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	ring := s.cl.Ring()
	stored := make(map[string]int)
	owned := make(map[string]int)
	for _, name := range s.db.Streams() {
		for i, n := range ring.Members(name) {
			stored[n.ID]++
			if i == 0 {
				owned[n.ID]++
			}
		}
	}
	nodes := make([]map[string]any, 0, len(ring.Nodes()))
	for _, n := range ring.Nodes() {
		nodes = append(nodes, map[string]any{
			"id":             n.ID,
			"addr":           n.Addr,
			"streams_stored": stored[n.ID],
			"streams_owned":  owned[n.ID],
		})
	}
	writeJSON(w, map[string]any{
		"enabled":       true,
		"epoch":         ring.Epoch(),
		"replicas":      ring.Replicas(),
		"self":          s.cl.Self().ID,
		"nodes":         nodes,
		"relays":        s.cl.Stats(),
		"summary_cache": s.cl.SummaryCacheStats(),
	})
}

// shardSummary resolves one stream's shard summary from wherever it
// lives: locally when this node stores the stream, otherwise from the
// first member that answers — consulting the cluster's summary cache
// first, so a dashboard re-polling the coordinator does not re-dial every
// shard (entries expire after a short TTL and drop eagerly on observed
// EndStep traffic). A nil summary means the stream holds no data anywhere
// reachable.
func (s *server) shardSummary(ctx context.Context, name string) (*core.ShardSummary, error) {
	if s.cl == nil || s.cl.Member(name) {
		st, ok := s.db.Lookup(name)
		if !ok {
			return nil, nil
		}
		return st.Summary()
	}
	var lastErr error
	for _, n := range s.cl.Ring().Members(name) {
		sum, err := s.cl.CachedSummary(ctx, n, name)
		if err != nil {
			lastErr = err
			continue
		}
		return sum, nil
	}
	return nil, lastErr
}

// handleClusterQuantile answers a quantile over the UNION of several
// streams — wherever their shards live — by gathering one core.ShardSummary
// per stream and merging them (core.MergeShardSummaries → Combined →
// QuickQuery). The answer's rank error is within 1.5·ε·N of the union's
// total count N (Lemma 3 under summary composition). Streams with no data
// contribute zero. Works single-node too, where every summary is local.
//
//	GET /cluster/quantile?streams=a,b,c&phi=0.95
func (s *server) handleClusterQuantile(w http.ResponseWriter, r *http.Request) {
	var streams []string
	for _, part := range strings.Split(r.URL.Query().Get("streams"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			streams = append(streams, part)
		}
	}
	if len(streams) == 0 {
		httpError(w, http.StatusBadRequest, "no streams")
		return
	}
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad phi: %v", err)
		return
	}
	// Scatter-gather: every stream's summary resolves concurrently (local
	// lookups and peer fetches alike) instead of dialing shards one after
	// another, so the request's latency is the slowest single fetch.
	sums := make([]*core.ShardSummary, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, name := range streams {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sums[i], errs[i] = s.shardSummary(r.Context(), name)
		}(i, name)
	}
	wg.Wait()
	for i, ferr := range errs {
		if ferr != nil {
			httpError(w, http.StatusBadGateway, "stream %q: %v", streams[i], ferr)
			return
		}
	}
	merged, total, err := core.MergeShardSummaries(sums)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "merge: %v", err)
		return
	}
	if total == 0 {
		httpError(w, http.StatusNotFound, "no data in streams %v", streams)
		return
	}
	v, err := merged.QuickQuery(max(int64(phi*float64(total)), 1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "quantile: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"streams": streams, "phi": phi, "value": v, "n": total, "quick": true,
	})
}

// remoteSummary fetches the merged view of a single remote stream for the
// per-stream read fallbacks. 404 semantics match the local path: a stream
// with no data anywhere is "unknown".
func (s *server) remoteSummary(w http.ResponseWriter, r *http.Request, name string) (*core.Combined, int64, bool) {
	sum, err := s.shardSummary(r.Context(), name)
	if err != nil {
		httpError(w, http.StatusBadGateway, "stream %q: %v", name, err)
		return nil, 0, false
	}
	if sum == nil || sum.N == 0 {
		httpError(w, http.StatusNotFound, "unknown stream %q", name)
		return nil, 0, false
	}
	merged, total, err := core.MergeShardSummaries([]*core.ShardSummary{sum})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "stream %q: %v", name, err)
		return nil, 0, false
	}
	return merged, total, true
}

// remoteQuantile answers GET /streams/{name}/quantile for a stream this
// node does not store: fetch one member's shard summary, answer quick.
// window= is refused — windows need the owning shard's full state.
func (s *server) remoteQuantile(name string, w http.ResponseWriter, r *http.Request) {
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad phi: %v", err)
		return
	}
	if r.URL.Query().Get("window") != "" {
		httpError(w, http.StatusBadRequest, "window queries are not available for remote stream %q; ask a member node", name)
		return
	}
	c, total, ok := s.remoteSummary(w, r, name)
	if !ok {
		return
	}
	v, err := c.QuickQuery(max(int64(phi*float64(total)), 1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "quantile: %v", err)
		return
	}
	writeJSON(w, map[string]any{"stream": name, "phi": phi, "value": v, "quick": true, "remote": true})
}

// remoteQuantiles answers GET /streams/{name}/quantiles remotely. Every
// answer is summary-quick; max-reads is meaningless here and ignored.
func (s *server) remoteQuantiles(name string, w http.ResponseWriter, r *http.Request) {
	var phis []float64
	for _, part := range strings.Split(r.URL.Query().Get("phi"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		phi, err := strconv.ParseFloat(part, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad phi %q: %v", part, err)
			return
		}
		phis = append(phis, phi)
	}
	if len(phis) == 0 {
		httpError(w, http.StatusBadRequest, "no phi values")
		return
	}
	c, total, ok := s.remoteSummary(w, r, name)
	if !ok {
		return
	}
	vals := make([]int64, len(phis))
	for i, phi := range phis {
		v, err := c.QuickQuery(max(int64(phi*float64(total)), 1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "quantiles: %v", err)
			return
		}
		vals[i] = v
	}
	writeJSON(w, map[string]any{"stream": name, "phi": phis, "values": vals, "quick": true, "remote": true})
}

// remoteRank answers GET /streams/{name}/rank remotely with the combined
// summary's rank estimate: the midpoint of the rank bounds of the largest
// summary value ≤ v, which is within the summary's ε band of the true rank.
func (s *server) remoteRank(name string, w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad v: %v", err)
		return
	}
	c, total, ok := s.remoteSummary(w, r, name)
	if !ok {
		return
	}
	i := sort.Search(c.Len(), func(i int) bool { return c.Value(i) > v }) - 1
	var rank int64
	if i >= 0 {
		lo, hi := c.Bounds(i)
		rank = int64((lo + hi) / 2)
	}
	writeJSON(w, map[string]any{"stream": name, "v": v, "rank": rank, "total": total, "quick": true, "remote": true})
}

// restSession is the synthetic wire session carrying this node's forwarded
// REST writes. One session per node keeps the target's dedup marks small;
// the per-(session, stream) sequence marks give forwarded REST writes the
// same exactly-once application as wire clients.
func (s *server) restSession() string { return "rest:" + s.cl.Self().ID }

// forwardFrame allocates the next forwarding sequence number, hands the
// frame to the cluster transport, and blocks until the owning shard (and
// its followers, transitively) acknowledged it. Sequence allocation and
// enqueue happen under one lock so the relay's queue order matches
// sequence order — the target prunes replays by per-stream high-water
// mark, so out-of-order enqueue would make later frames look like dups.
func (s *server) forwardFrame(ctx context.Context, stream string, f *wire.Frame) error {
	s.fwdMu.Lock()
	s.fwdSeq++
	f.Seq = s.fwdSeq
	err := s.cl.Relay(s.restSession(), stream, f, false)
	s.fwdMu.Unlock()
	if err != nil {
		return err
	}
	return s.cl.WaitRelayed(ctx, s.restSession(), f.Seq)
}

// parseObserveValues buffers an observe body (either format — see
// handleObserve) into one slice: the forwarding path sends a single Batch
// frame, it cannot apply line by line like the local handler. Error
// messages match the local handler's so clients see one surface.
func parseObserveValues(r *http.Request) ([]int64, string) {
	br := bufio.NewReader(r.Body)
	if first, err := peekNonSpace(br); err == nil && first == '{' {
		var body struct {
			Value  *int64  `json:"value"`
			Values []int64 `json:"values"`
		}
		dec := json.NewDecoder(br)
		if err := dec.Decode(&body); err != nil {
			return nil, fmt.Sprintf("bad JSON body: %v", err)
		}
		if _, err := dec.Token(); err != io.EOF {
			return nil, "trailing content after JSON body"
		}
		if body.Value == nil && body.Values == nil {
			return nil, `JSON body must carry "value" or "values"`
		}
		var vals []int64
		if body.Value != nil {
			vals = append(vals, *body.Value)
		}
		return append(vals, body.Values...), ""
	}
	sc := bufio.NewScanner(br)
	var vals []int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, fmt.Sprintf("bad element %q: %v", line, err)
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Sprintf("read body: %v", err)
	}
	return vals, ""
}

// clusterObserve handles POST /streams/{name}/observe in cluster mode.
// When this node stores the stream the batch is applied locally and then
// fanned to the stream's other members — the same replication path wire
// ingest takes. When it does not, the batch is routed to the owning shard.
// Either way the 200 is ack-gated like a wire client's: every reachable
// member applied (or the transport declared the straggler down).
func (s *server) clusterObserve(name string, w http.ResponseWriter, r *http.Request) {
	vals, errMsg := parseObserveValues(r)
	if errMsg != "" {
		httpError(w, http.StatusBadRequest, "%s", errMsg)
		return
	}
	if !s.cl.Member(name) {
		if len(vals) > 0 {
			if err := s.forwardFrame(r.Context(), name, &wire.Frame{Type: wire.TypeBatch, Values: vals}); err != nil {
				httpError(w, http.StatusBadGateway, "forward observe %q: %v", name, err)
				return
			}
		}
		writeJSON(w, map[string]any{"stream": name, "observed": len(vals), "forwarded": true})
		return
	}
	st, err := s.db.Stream(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, "stream %q: %v", name, err)
		return
	}
	if len(vals) > 0 {
		if err := st.ObserveSliceCtx(r.Context(), vals); err != nil {
			httpError(w, http.StatusBadRequest, "observe: %v", err)
			return
		}
		if err := s.forwardFrame(r.Context(), name, &wire.Frame{Type: wire.TypeBatch, Values: vals}); err != nil {
			httpError(w, http.StatusBadGateway, "replicate observe %q: %v", name, err)
			return
		}
	}
	writeJSON(w, map[string]any{"stream": name, "observed": len(vals), "stream_count": st.StreamCount()})
}

// clusterEndStep handles POST /streams/{name}/endstep in cluster mode:
// local end-step + checkpoint and a fanned EndStep frame for member
// streams, a routed EndStep frame otherwise.
func (s *server) clusterEndStep(name string, w http.ResponseWriter, r *http.Request) {
	if !s.cl.Member(name) {
		if err := s.forwardFrame(r.Context(), name, &wire.Frame{Type: wire.TypeEndStep}); err != nil {
			httpError(w, http.StatusBadGateway, "forward endstep %q: %v", name, err)
			return
		}
		writeJSON(w, map[string]any{"stream": name, "forwarded": true})
		return
	}
	st, err := s.db.Stream(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, "stream %q: %v", name, err)
		return
	}
	us, err := st.EndStepCtx(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "end step: %v", err)
		return
	}
	s.ing.NotifyEndStep(st.Name())
	if err := st.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	if err := s.forwardFrame(r.Context(), name, &wire.Frame{Type: wire.TypeEndStep}); err != nil {
		httpError(w, http.StatusBadGateway, "replicate endstep %q: %v", name, err)
		return
	}
	writeJSON(w, map[string]any{
		"stream":   name,
		"batch":    us.BatchSize,
		"total_ms": us.TotalTime().Milliseconds(),
		"io":       us.TotalIO(),
		"merges":   us.Merges,
		"steps":    st.Steps(),
	})
}
