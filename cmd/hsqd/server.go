package main

import (
	"repro"
)

// server wraps the engine behind the HTTP handlers. Kept separate from
// main.go so tests can construct it without binding a socket.
type server struct {
	eng *hsq.Engine
}

// newServer builds or resumes an engine in dir.
func newServer(dir string, epsilon float64, kappa int, resume bool) (*server, error) {
	cfg := hsq.Config{Epsilon: epsilon, Kappa: kappa, Dir: dir}
	var (
		eng *hsq.Engine
		err error
	)
	if resume {
		eng, err = hsq.Open(cfg)
	} else {
		eng, err = hsq.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	return &server{eng: eng}, nil
}
