package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/ingest"
)

// server wraps a multi-stream DB behind the HTTP handlers plus the binary
// ingest pipeline. Kept separate from main.go so tests can construct it
// without binding a socket; the ingest server exists even when no
// -ingest-addr listener is bound (tests drive it through ServeConn, and
// GET /ingest always has a consistent shape).
type server struct {
	db  *hsq.DB
	ing *ingest.Server
	// cl is the cluster layer; nil in single-node mode. When set, writes
	// for streams this node does not store forward to the owning shard and
	// reads for them are answered from a member's shard summary.
	cl *cluster.Cluster
	// ingAddr is the bound ingest listener address ("" when the listener
	// is disabled). Written once before serving begins.
	ingAddr string
	// fwdMu serializes sequence allocation + enqueue for forwarded REST
	// writes on the node's synthetic wire session (see forwardFrame).
	fwdMu  sync.Mutex
	fwdSeq uint64
}

// legacyStream backs the original single-stream endpoints (/observe,
// /quantile, ...), which now operate on one well-known stream of the DB.
const legacyStream = "default"

// serverConfig carries the engine knobs from flags (or tests) to newServer.
type serverConfig struct {
	dir          string
	backend      string
	cacheBlocks  int
	blockFormat  string
	epsilon      float64
	kappa        int
	maintenance  string
	maxPending   int
	maintWorkers int
	maxHydrated  int
	probeMemo    int                              // per-snapshot rank-probe memo entries (0 = default, < 0 = off)
	logf         func(format string, args ...any) // ingest connection logs; nil = silent

	// Cluster mode (empty clusterPeers = single node).
	nodeID       string        // this node's ID; must appear in clusterPeers
	clusterPeers string        // id=host:port,... ingest addresses, self included
	replicas     int           // replication factor R (≥ 1)
	ringEpoch    uint64        // membership epoch (0 = 1)
	ingestIdle   time.Duration // drop idle ingest conns after this (0 = never)
	summaryTTL   time.Duration // peer summary cache TTL (0 = default, < 0 = off)
}

// newServer opens (or resumes — the DB manifest decides) a multi-stream DB
// on the configured backend. A legacy pre-multi-stream warehouse in dir is
// first adopted as the "default" stream so upgrades keep their history.
func newServer(sc serverConfig) (*server, error) {
	if sc.dir != "" && (sc.backend == "" || sc.backend == "file") {
		if err := migrateLegacyLayout(sc.dir); err != nil {
			return nil, fmt.Errorf("migrate legacy warehouse in %s: %w", sc.dir, err)
		}
	}
	db, err := hsq.Open(hsq.Options{
		Epsilon:            sc.epsilon,
		Kappa:              sc.kappa,
		Backend:            sc.backend,
		Dir:                sc.dir,
		CacheBlocks:        sc.cacheBlocks,
		BlockFormat:        sc.blockFormat,
		Maintenance:        sc.maintenance,
		MaxPendingSteps:    sc.maxPending,
		MaintenanceWorkers: sc.maintWorkers,
		MaxHydratedStreams: sc.maxHydrated,
		ProbeMemoEntries:   sc.probeMemo,
	})
	if err != nil {
		return nil, err
	}
	icfg := ingest.Config{DB: db, Logf: sc.logf, IdleTimeout: sc.ingestIdle}
	var cl *cluster.Cluster
	if sc.clusterPeers != "" {
		cl, err = newCluster(sc)
		if err != nil {
			db.Close() //nolint:errcheck
			return nil, err
		}
		// The interface field is only assigned for a non-nil *Cluster: a
		// typed nil here would defeat the server's `cluster == nil` check.
		icfg.Cluster = cl
	}
	return &server{db: db, ing: ingest.New(icfg), cl: cl}, nil
}

// newCluster builds the cluster layer from the flag-shaped config: parse
// the explicit membership, build the placement ring, bind self.
func newCluster(sc serverConfig) (*cluster.Cluster, error) {
	nodes, err := cluster.ParsePeers(sc.clusterPeers)
	if err != nil {
		return nil, err
	}
	epoch := sc.ringEpoch
	if epoch == 0 {
		epoch = 1
	}
	ring, err := cluster.NewRing(cluster.Membership{Epoch: epoch, Replicas: sc.replicas, Nodes: nodes})
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{Self: sc.nodeID, Ring: ring, SummaryTTL: sc.summaryTTL, Logf: sc.logf})
}

// migrateLegacyLayout adopts a pre-multi-stream warehouse — flat
// part-*.dat files plus a root MANIFEST.json, as written by hsqd before
// the DB redesign — as the DB's "default" stream: the files move under
// streams/default/, the manifest gains that namespace, and a DB manifest
// is written so hsq.Open resumes the stream. A dir that already has a DB
// manifest, or no legacy manifest, is left untouched.
func migrateLegacyLayout(dir string) error {
	legacy := filepath.Join(dir, "MANIFEST.json")
	if _, err := os.Stat(filepath.Join(dir, "DB.json")); err == nil {
		return nil
	}
	data, err := os.ReadFile(legacy)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var manifest map[string]any
	if err := json.Unmarshal(data, &manifest); err != nil {
		return fmt.Errorf("parse %s: %w", legacy, err)
	}
	target := filepath.Join(dir, "streams", "default")
	if err := os.MkdirAll(target, 0o755); err != nil {
		return err
	}
	parts, err := filepath.Glob(filepath.Join(dir, "part-*.dat"))
	if err != nil {
		return err
	}
	for _, p := range parts {
		if err := os.Rename(p, filepath.Join(target, filepath.Base(p))); err != nil {
			return err
		}
	}
	// The store validates its manifest's namespace against the view it is
	// opened under.
	manifest["namespace"] = "streams/default"
	out, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(target, "MANIFEST.json"), out, 0o644); err != nil {
		return err
	}
	if err := os.Remove(legacy); err != nil {
		return err
	}
	db, err := json.MarshalIndent(map[string]any{"version": 1, "streams": []string{"default"}}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "DB.json"), db, 0o644); err != nil {
		return err
	}
	log.Printf("hsqd: migrated legacy warehouse in %s to multi-stream layout (stream %q, %d partitions)",
		dir, legacyStream, len(parts))
	return nil
}

// streamHandler is an HTTP handler parameterized by the stream it operates
// on, so the same handler serves both /streams/{name}/... and the legacy
// single-stream routes.
type streamHandler func(st *hsq.Stream, w http.ResponseWriter, r *http.Request)

// named adapts a streamHandler to a /streams/{name}/... route. create
// controls whether a missing stream is created on the fly (ingest paths) or
// a 404 (query paths).
func (s *server) named(h streamHandler, create bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		var st *hsq.Stream
		if create {
			var err error
			st, err = s.db.Stream(name)
			if err != nil {
				httpError(w, http.StatusBadRequest, "stream %q: %v", name, err)
				return
			}
		} else {
			var ok bool
			st, ok = s.db.Lookup(name)
			if !ok {
				httpError(w, http.StatusNotFound, "unknown stream %q", name)
				return
			}
		}
		h(st, w, r)
	}
}

// remoteHandler serves a /streams/{name}/... route for a stream this node
// does not store (cluster mode): by shard-summary fetch (reads) or wire
// forwarding to the owning shard (writes).
type remoteHandler func(name string, w http.ResponseWriter, r *http.Request)

// namedQuery adapts a read-only streamHandler: local when this node stores
// the stream, remote-summary answered when a cluster peer owns it. The
// single-node behavior (404 for unknown streams) is unchanged.
func (s *server) namedQuery(h streamHandler, remote remoteHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if st, ok := s.db.Lookup(name); ok {
			h(st, w, r)
			return
		}
		if s.cl != nil && !s.cl.Member(name) {
			remote(name, w, r)
			return
		}
		httpError(w, http.StatusNotFound, "unknown stream %q", name)
	}
}

// namedWrite adapts a write streamHandler. Single-node mode keeps the old
// create-on-the-fly local path; cluster mode hands the whole request to
// the cluster-aware handler, which applies+fans member streams and routes
// the rest to the owning shard.
func (s *server) namedWrite(h streamHandler, clustered remoteHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if s.cl != nil {
			clustered(name, w, r)
			return
		}
		st, err := s.db.Stream(name)
		if err != nil {
			httpError(w, http.StatusBadRequest, "stream %q: %v", name, err)
			return
		}
		h(st, w, r)
	}
}

// legacy adapts a streamHandler to the original single-stream routes, which
// operate on the "default" stream (created on first touch).
func (s *server) legacy(h streamHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := s.db.Stream(legacyStream)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "stream %q: %v", legacyStream, err)
			return
		}
		h(st, w, r)
	}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	// Liveness + cluster surface (shape is fixed even in single-node mode).
	m.HandleFunc("GET /healthz", s.handleHealthz)
	m.HandleFunc("GET /cluster", s.handleCluster)
	m.HandleFunc("GET /cluster/quantile", s.handleClusterQuantile)
	// Multi-stream surface. Writes and point reads route through the
	// cluster layer when one is configured; with cl == nil the adapters
	// collapse to the original local-only behavior.
	m.HandleFunc("GET /streams", s.handleStreams)
	m.HandleFunc("GET /ingest", s.handleIngest)
	m.HandleFunc("POST /query", s.handleQuery)
	m.HandleFunc("DELETE /streams/{name}", s.handleDeleteStream)
	m.HandleFunc("POST /streams/{name}/observe", s.namedWrite(s.handleObserve, s.clusterObserve))
	m.HandleFunc("POST /streams/{name}/endstep", s.namedWrite(s.handleEndStep, s.clusterEndStep))
	m.HandleFunc("GET /streams/{name}/quantile", s.namedQuery(s.handleQuantile, s.remoteQuantile))
	m.HandleFunc("GET /streams/{name}/quantiles", s.namedQuery(s.handleQuantiles, s.remoteQuantiles))
	m.HandleFunc("GET /streams/{name}/rank", s.namedQuery(s.handleRank, s.remoteRank))
	m.HandleFunc("GET /streams/{name}/stats", s.named(s.handleStreamStats, false))
	m.HandleFunc("GET /streams/{name}/maintenance", s.named(s.handleMaintenance, false))
	m.HandleFunc("POST /streams/{name}/maintenance", s.named(s.handleMaintainNow, false))
	// Legacy single-stream surface, served by the "default" stream.
	m.HandleFunc("POST /observe", s.legacy(s.handleObserve))
	m.HandleFunc("POST /endstep", s.legacy(s.handleEndStep))
	m.HandleFunc("GET /quantile", s.legacy(s.handleQuantile))
	m.HandleFunc("GET /quantiles", s.legacy(s.handleQuantiles))
	m.HandleFunc("GET /rank", s.legacy(s.handleRank))
	m.HandleFunc("GET /stats", s.legacy(s.handleStreamStats))
	return m
}
