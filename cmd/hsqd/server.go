package main

import (
	"repro"
)

// server wraps the engine behind the HTTP handlers. Kept separate from
// main.go so tests can construct it without binding a socket.
type server struct {
	eng *hsq.Engine
}

// serverConfig carries the engine knobs from flags (or tests) to newServer.
type serverConfig struct {
	dir         string
	backend     string
	cacheBlocks int
	epsilon     float64
	kappa       int
	resume      bool
}

// newServer builds or resumes an engine on the configured backend.
func newServer(sc serverConfig) (*server, error) {
	cfg := hsq.Config{
		Epsilon:     sc.epsilon,
		Kappa:       sc.kappa,
		Backend:     sc.backend,
		Dir:         sc.dir,
		CacheBlocks: sc.cacheBlocks,
	}
	var (
		eng *hsq.Engine
		err error
	)
	if sc.resume {
		eng, err = hsq.Open(cfg)
	} else {
		eng, err = hsq.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	return &server{eng: eng}, nil
}
