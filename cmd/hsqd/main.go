// Command hsqd exposes an Engine over HTTP — a minimal "data stream
// warehouse" service in the spirit of the paper's deployment setting
// (Figure 1): producers POST stream elements, a scheduler POSTs step
// boundaries, and dashboards GET quantiles.
//
// Endpoints:
//
//	POST /observe   body: newline-separated integers
//	POST /endstep   (no body) — load the current batch into the warehouse
//	GET  /quantile?phi=0.99[&quick=1][&window=K]
//	GET  /stats
//
// Usage:
//
//	hsqd -dir /var/lib/hsq -epsilon 0.001 -kappa 10 -addr :8080
//	hsqd -backend mem -cache-blocks 1024 -epsilon 0.001    # volatile, no dir
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
)

func main() {
	var (
		dir     = flag.String("dir", "", "warehouse directory (required for -backend file)")
		backend = flag.String("backend", "file", "storage backend: file|mem")
		cache   = flag.Int("cache-blocks", 0, "block-cache capacity in blocks (0 = no cache)")
		epsilon = flag.Float64("epsilon", 0.001, "approximation parameter ε")
		kappa   = flag.Int("kappa", 10, "merge threshold κ")
		addr    = flag.String("addr", ":8080", "listen address")
		resume  = flag.Bool("resume", false, "resume from an existing checkpoint in -dir")
	)
	flag.Parse()
	if *dir == "" && *backend != "mem" {
		log.Fatal("hsqd: -dir is required for the file backend")
	}
	if *resume && *backend == "mem" {
		log.Fatal("hsqd: -resume requires the file backend (mem state dies with the process)")
	}
	srv, err := newServer(serverConfig{
		dir: *dir, backend: *backend, cacheBlocks: *cache,
		epsilon: *epsilon, kappa: *kappa, resume: *resume,
	})
	if err != nil {
		log.Fatalf("hsqd: %v", err)
	}
	log.Printf("hsqd: serving on %s (backend=%s dir=%s ε=%g κ=%d cache=%d)",
		*addr, *backend, *dir, *epsilon, *kappa, *cache)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("hsqd: encode response: %v", err)
	}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("POST /observe", s.handleObserve)
	m.HandleFunc("POST /endstep", s.handleEndStep)
	m.HandleFunc("GET /quantile", s.handleQuantile)
	m.HandleFunc("GET /quantiles", s.handleQuantiles)
	m.HandleFunc("GET /rank", s.handleRank)
	m.HandleFunc("GET /stats", s.handleStats)
	return m
}

// handleQuantiles answers a batch of φ targets in one shot:
// GET /quantiles?phi=0.5,0.95,0.99
func (s *server) handleQuantiles(w http.ResponseWriter, r *http.Request) {
	var phis []float64
	for _, part := range strings.Split(r.URL.Query().Get("phi"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		phi, err := strconv.ParseFloat(part, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad phi %q: %v", part, err)
			return
		}
		phis = append(phis, phi)
	}
	if len(phis) == 0 {
		httpError(w, http.StatusBadRequest, "no phi values")
		return
	}
	vals, qs, err := s.eng.Quantiles(phis)
	if err != nil {
		httpError(w, http.StatusBadRequest, "quantiles: %v", err)
		return
	}
	writeJSON(w, map[string]any{"phi": phis, "values": vals, "disk_reads": qs.RandReads})
}

// handleRank estimates the rank of a value: GET /rank?v=12345[&quick=1]
func (s *server) handleRank(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad v: %v", err)
		return
	}
	var rank int64
	if r.URL.Query().Get("quick") == "1" {
		rank, err = s.eng.RankQuick(v)
	} else {
		rank, _, err = s.eng.Rank(v)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "rank: %v", err)
		return
	}
	writeJSON(w, map[string]any{"v": v, "rank": rank, "total": s.eng.TotalCount()})
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	count := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad element %q: %v", line, err)
			return
		}
		s.eng.Observe(v)
		count++
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	writeJSON(w, map[string]any{"observed": count, "stream": s.eng.StreamCount()})
}

func (s *server) handleEndStep(w http.ResponseWriter, r *http.Request) {
	us, err := s.eng.EndStep()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "end step: %v", err)
		return
	}
	if err := s.eng.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"batch":    us.BatchSize,
		"total_ms": us.TotalTime().Milliseconds(),
		"io":       us.TotalIO(),
		"merges":   us.Merges,
		"steps":    s.eng.Steps(),
	})
}

func (s *server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad phi: %v", err)
		return
	}
	quick := r.URL.Query().Get("quick") == "1"
	windowStr := r.URL.Query().Get("window")

	var v int64
	switch {
	case windowStr != "":
		win, err := strconv.Atoi(windowStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad window: %v", err)
			return
		}
		if quick {
			v, err = s.eng.WindowQuantileQuick(phi, win)
		} else {
			v, _, err = s.eng.WindowQuantile(phi, win)
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "window quantile: %v", err)
			return
		}
	case quick:
		v, err = s.eng.QuantileQuick(phi)
		if err != nil {
			httpError(w, http.StatusBadRequest, "quick quantile: %v", err)
			return
		}
	default:
		v, _, err = s.eng.Quantile(phi)
		if err != nil {
			httpError(w, http.StatusBadRequest, "quantile: %v", err)
			return
		}
	}
	writeJSON(w, map[string]any{"phi": phi, "value": v, "quick": quick})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	mu := s.eng.MemoryUsage()
	io := s.eng.DiskStats()
	writeJSON(w, map[string]any{
		"levels":        s.eng.Describe(),
		"stream_count":  s.eng.StreamCount(),
		"hist_count":    s.eng.HistCount(),
		"total_count":   s.eng.TotalCount(),
		"steps":         s.eng.Steps(),
		"partitions":    s.eng.PartitionCount(),
		"windows":       s.eng.AvailableWindows(),
		"mem_hist":      mu.HistBytes,
		"mem_stream":    mu.StreamBytes,
		"io_seq_reads":  io.SeqReads,
		"io_seq_writes": io.SeqWrites,
		"io_rand_reads": io.RandReads,
		"io_cache_hits": io.CacheHits,
		"io_cache_miss": io.CacheMisses,
	})
}
