// Command hsqd exposes a multi-stream quantile DB over HTTP — a "data
// stream warehouse" service in the spirit of the paper's deployment setting
// (Figure 1): producers POST stream elements, a scheduler POSTs step
// boundaries, and dashboards GET quantiles. Many named streams (per-user
// latencies, per-endpoint sizes, ...) multiplex one storage backend, one
// block-cache budget and one manifest root; the DB resumes every stream
// automatically on restart.
//
// Multi-stream endpoints:
//
//	GET    /streams                         list streams with per-stream stats
//	GET    /ingest                          wire-ingest pipeline counters
//	DELETE /streams/{name}                  drop a stream and its on-disk state
//	POST   /streams/{name}/observe          body: newline-separated integers,
//	                                        or JSON {"values":[...]} (batched)
//	POST   /streams/{name}/endstep          load the stream's batch + checkpoint
//	GET    /streams/{name}/quantile?phi=0.99[&quick=1][&window=K]
//	GET    /streams/{name}/quantiles?phi=0.5,0.95,0.99[&max-reads=N]
//	GET    /streams/{name}/rank?v=12345[&quick=1]
//	GET    /streams/{name}/stats
//	GET    /streams/{name}/maintenance    background-maintenance state
//	POST   /streams/{name}/maintenance    drain: install every sealed step now
//
// The original single-stream endpoints (POST /observe, POST /endstep,
// GET /quantile, /quantiles, /rank, /stats) remain and operate on the
// stream named "default".
//
// With -ingest-addr, hsqd additionally listens for the binary wire
// protocol (package hsqclient / internal/wire): length-prefixed frames
// carrying delta-compressed value batches, with session-replay
// exactly-once delivery and credit-window backpressure. That path is the
// intended front door for high-rate producers — the HTTP surface costs a
// request per (at best) a few thousand elements; the wire path sustains
// millions of elements per second per connection (see
// BenchmarkRemoteIngest and `hsqbench -figure ingest`).
//
// With -cluster-peers, hsqd joins a sharded deployment (internal/cluster):
// an explicit, epoch-numbered membership and a deterministic
// consistent-hash ring place each stream on an owner node plus -replicas−1
// followers. Every node is a full front door — writes for streams it does
// not store forward to the owning shard over the wire protocol (ack-gated,
// exactly-once via per-session sequence marks), per-stream reads for such
// streams are answered from a member's shard summary, and
//
//	GET /cluster                            membership, placement, relay lag
//	GET /cluster/quantile?streams=a,b&phi=φ quantile over the union of
//	                                        streams via summary merge
//	GET /healthz                            liveness (no locks, fixed body)
//
// expose the cluster itself. All nodes must be started with the same
// -cluster-peers, -replicas and -ring-epoch values.
//
// With -maintenance async (recommended under write-heavy load), EndStep
// seals the batch durably and returns while a DB-wide worker pool sorts and
// merges in the background; queries keep answering — within ε — throughout.
// GET /streams then also reports the scheduler: queued/running streams and
// the aggregate merge debt. -max-pending-steps bounds how far a stream may
// fall behind before ingest blocks (backpressure).
//
// Usage:
//
//	hsqd -dir /var/lib/hsq -epsilon 0.001 -kappa 10 -addr :8080
//	hsqd -backend mem -cache-blocks 1024 -epsilon 0.001    # volatile, no dir
//	hsqd -dir /var/lib/hsq -epsilon 0.001 -maintenance async -maint-workers 4
//	hsqd -dir /var/lib/hsq -epsilon 0.001 -ingest-addr :9090   # + wire ingest
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		dir        = flag.String("dir", "", "warehouse directory (required for -backend file)")
		backend    = flag.String("backend", "file", "storage backend: file|mem")
		cache      = flag.Int("cache-blocks", 0, "shared block-cache capacity in blocks (0 = no cache)")
		format     = flag.String("block-format", "", "partition file layout: columnar (default)|raw; existing files of either format stay readable")
		epsilon    = flag.Float64("epsilon", 0.001, "approximation parameter ε")
		kappa      = flag.Int("kappa", 10, "merge threshold κ")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		ingestAddr = flag.String("ingest-addr", "", "TCP listen address for the binary ingest protocol (hsqclient); empty = disabled")
		resume     = flag.Bool("resume", false, "deprecated: resume is automatic when -dir holds a DB manifest")

		maintenance = flag.String("maintenance", "", "maintenance mode: sync (default: install inline in endstep), async (background scheduler), manual (drain on demand via POST maintenance); unset with -max-pending-steps > 0 selects async")
		maxPending  = flag.Int("max-pending-steps", 0, "async backpressure: sealed steps a stream may queue before endstep blocks (0 = default 4); > 0 alone turns async maintenance on")
		maintWork   = flag.Int("maint-workers", 0, "async scheduler worker pool size shared by all streams (0 = default 2)")
		maxHydrated = flag.Int("max-hydrated", 0, "hydrated-engine budget: streams resident in memory before LRU eviction seals idle ones (0 = unbounded)")
		probeMemo   = flag.Int("probe-memo-entries", 0, "per-snapshot rank-probe memo capacity: repeated queries against an unchanged stream resolve with no disk reads (0 = default 4096, negative = off)")

		nodeID     = flag.String("node-id", "", "this node's stable cluster ID (required with -cluster-peers)")
		peers      = flag.String("cluster-peers", "", "cluster membership: comma-separated id=host:port ingest addresses, self included; empty = single node")
		replicas   = flag.Int("replicas", 1, "cluster replication factor R: each stream lives on its owner plus R-1 followers")
		ringEpoch  = flag.Uint64("ring-epoch", 1, "cluster membership epoch; every node of a cluster must run the same value (GET /cluster reports it)")
		ingestIdle = flag.Duration("ingest-idle-timeout", 0, "drop ingest connections idle longer than this (0 = never)")
		summaryTTL = flag.Duration("summary-cache-ttl", 0, "peer shard-summary cache lifetime for coordinator reads; entries also drop on observed endstep traffic (0 = default 2s, negative = off)")
	)
	flag.Parse()
	if *dir == "" && *backend != "mem" {
		log.Fatal("hsqd: -dir is required for the file backend")
	}
	if *peers != "" {
		if *nodeID == "" {
			log.Fatal("hsqd: -cluster-peers requires -node-id")
		}
		if *ingestAddr == "" {
			log.Fatal("hsqd: -cluster-peers requires -ingest-addr (peers replicate and query over the wire protocol)")
		}
	}
	if *resume {
		log.Print("hsqd: -resume is deprecated; the DB resumes automatically from its manifest")
	}
	srv, err := newServer(serverConfig{
		dir: *dir, backend: *backend, cacheBlocks: *cache,
		blockFormat: *format,
		epsilon:     *epsilon, kappa: *kappa,
		maintenance: *maintenance, maxPending: *maxPending, maintWorkers: *maintWork,
		maxHydrated: *maxHydrated, probeMemo: *probeMemo,
		nodeID: *nodeID, clusterPeers: *peers, replicas: *replicas,
		ringEpoch: *ringEpoch, ingestIdle: *ingestIdle, summaryTTL: *summaryTTL,
		logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("hsqd: %v", err)
	}

	// SIGINT/SIGTERM start a graceful shutdown: both listeners stop, HTTP
	// requests and ingest connections drain, and — crucially — db.Close()
	// runs, so the final checkpoint is never skipped. A second signal
	// kills the process the usual way (the signal context is released
	// before the drain begins).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ingestAddr != "" {
		l, err := net.Listen("tcp", *ingestAddr)
		if err != nil {
			log.Fatalf("hsqd: ingest listener: %v", err)
		}
		srv.ingAddr = l.Addr().String()
		go func() {
			if err := srv.ing.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("hsqd: ingest listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux()}
	httpErr := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
	}()
	log.Printf("hsqd: serving on %s (ingest=%s backend=%s dir=%s ε=%g κ=%d cache=%d maintenance=%s streams=%v)",
		*addr, orNone(srv.ingAddr), *backend, *dir, *epsilon, *kappa, *cache, srv.db.MaintenanceMode(), srv.db.Streams())
	if srv.cl != nil {
		ring := srv.cl.Ring()
		log.Printf("hsqd: cluster mode: node %s, epoch %d, replicas %d, %d members",
			srv.cl.Self().ID, ring.Epoch(), ring.Replicas(), len(ring.Nodes()))
	}

	exitCode := 0
	select {
	case err := <-httpErr:
		// Even a failed HTTP listener must not skip the drain + final
		// checkpoint: wire clients may already have delivered data.
		log.Printf("hsqd: HTTP server failed: %v", err)
		exitCode = 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C is immediate
	log.Print("hsqd: shutting down (draining connections, final checkpoint)")

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("hsqd: HTTP shutdown: %v", err)
	}
	if err := srv.ing.Shutdown(drainCtx); err != nil {
		log.Printf("hsqd: ingest shutdown: %v", err)
	}
	if srv.cl != nil {
		// After the ingest drain: no new frames can arrive, so stopping the
		// relays here abandons at most frames whose clients were never acked
		// (they replay against the surviving members).
		srv.cl.Close()
	}
	if err := srv.db.Close(); err != nil {
		log.Fatalf("hsqd: close DB: %v", err)
	}
	log.Print("hsqd: shutdown complete")
	os.Exit(exitCode)
}

// orNone renders an optional listen address for the startup log line.
func orNone(addr string) string {
	if addr == "" {
		return "off"
	}
	return addr
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("hsqd: encode response: %v", err)
	}
}

// handleStreams lists every registered stream with its counters —
// including its cumulative wire-ingest tally — plus the shared device
// aggregate the per-stream counters sum to and a summary of the ingest
// listener. Engine counters (stream/hist/steps/partitions) are reported
// only for hydrated streams: a status poll must never hydrate a
// million-stream directory, so cold streams show "hydrated": false with
// their durable I/O counters and ingest tallies only.
func (s *server) handleStreams(w http.ResponseWriter, r *http.Request) {
	perStream := s.db.StreamStats()
	streams := make([]map[string]any, 0, len(perStream))
	for _, name := range s.db.Streams() {
		st, ok := s.db.Lookup(name)
		if !ok {
			continue
		}
		io := perStream[name]
		ing := s.ing.StreamStats(name)
		hydrated := st.Hydrated()
		row := map[string]any{
			"name":             name,
			"hydrated":         hydrated,
			"io_seq_reads":     io.SeqReads,
			"io_seq_writes":    io.SeqWrites,
			"io_rand_reads":    io.RandReads,
			"io_cache_hits":    io.CacheHits,
			"ingest_values":    ing.Values,
			"ingest_batches":   ing.Batches,
			"ingest_end_steps": ing.EndSteps,
		}
		if hydrated {
			row["stream_count"] = st.StreamCount()
			row["hist_count"] = st.HistCount()
			row["steps"] = st.Steps()
			row["partitions"] = st.PartitionCount()
		}
		streams = append(streams, row)
	}
	agg := s.db.DiskStats()
	sched := s.db.SchedulerStats()
	ing := s.ing.Stats()
	writeJSON(w, map[string]any{
		"streams": streams,
		"device": map[string]any{
			"io_seq_reads":  agg.SeqReads,
			"io_seq_writes": agg.SeqWrites,
			"io_rand_reads": agg.RandReads,
			"io_cache_hits": agg.CacheHits,
			"cache_blocks":  s.db.CacheBlocks(),
		},
		"scheduler": map[string]any{
			"workers":            sched.Workers,
			"queued_streams":     sched.QueuedStreams,
			"running_streams":    sched.RunningStreams,
			"pending_steps":      sched.PendingSteps,
			"merge_debt":         sched.MergeDebt,
			"installs":           sched.Installs,
			"merges":             sched.Merges,
			"maint_io_reads":     sched.MaintIO.SeqReads + sched.MaintIO.RandReads,
			"maint_io_writes":    sched.MaintIO.SeqWrites,
			"registered_streams": sched.RegisteredStreams,
			"hydrated_streams":   sched.HydratedStreams,
			"hydrations":         sched.Hydrations,
			"evictions":          sched.Evictions,
		},
		"ingest": map[string]any{
			"listening":    s.ingAddr,
			"active_conns": ing.ActiveConns,
			"total_conns":  ing.TotalConns,
			"values":       ing.Values,
			"batches":      ing.Batches,
			"end_steps":    ing.EndSteps,
		},
	})
}

// handleIngest reports the wire-ingest pipeline in full: listener state,
// aggregate frame/value counters, the cumulative per-stream tallies and
// every live connection (with its session token and applied sequence
// high-water mark, the replay cursor a reconnect resumes from).
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	st := s.ing.Stats()
	conns := make([]map[string]any, 0, len(st.Conns))
	for _, c := range st.Conns {
		conns = append(conns, map[string]any{
			"id":        c.ID,
			"remote":    c.Remote,
			"session":   c.Session,
			"streams":   c.Streams,
			"subs":      c.Subs,
			"batches":   c.Batches,
			"values":    c.Values,
			"end_steps": c.EndSteps,
			"last_seq":  c.LastSeq,
		})
	}
	streams := make(map[string]any, len(st.Streams))
	for name, ss := range st.Streams {
		streams[name] = map[string]any{
			"batches":   ss.Batches,
			"values":    ss.Values,
			"end_steps": ss.EndSteps,
		}
	}
	writeJSON(w, map[string]any{
		"listening":    s.ingAddr,
		"window":       st.Window,
		"active_conns": st.ActiveConns,
		"total_conns":  st.TotalConns,
		"sessions":     st.Sessions,
		"frames":       st.Frames,
		"batches":      st.Batches,
		"values":       st.Values,
		"end_steps":    st.EndSteps,
		"dup_frames":   st.DupFrames,
		"errors":       st.Errors,
		"subscribes":   st.Subscribes,
		"pushes":       st.Pushes,
		"streams":      streams,
		"conns":        conns,
	})
}

// handleMaintainNow drains the stream's sealed backlog synchronously
// (SyncMaintenance): every pending step is sorted, installed and committed
// before the response. This is the drain hook for -maintenance manual —
// without periodic drains a manual-mode stream buffers every sealed batch
// in memory — and a quiescence barrier for async streams.
func (s *server) handleMaintainNow(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	if err := st.SyncMaintenance(); err != nil {
		httpError(w, http.StatusInternalServerError, "maintenance: %v", err)
		return
	}
	ms := st.MaintenanceStats()
	writeJSON(w, map[string]any{
		"stream":        st.Name(),
		"pending_steps": ms.PendingSteps,
		"installs":      ms.Installs,
		"merges":        ms.Merges,
	})
}

// handleMaintenance reports one stream's background-maintenance state:
// backlog, install/merge counters, backpressure and maintenance-attributed
// I/O.
func (s *server) handleMaintenance(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	ms := st.MaintenanceStats()
	writeJSON(w, map[string]any{
		"stream":             st.Name(),
		"mode":               ms.Mode,
		"pending_steps":      ms.PendingSteps,
		"pending_elements":   ms.PendingElements,
		"running":            ms.Running,
		"installs":           ms.Installs,
		"merges":             ms.Merges,
		"install_ms":         ms.InstallTime.Milliseconds(),
		"backpressure_waits": ms.BackpressureWaits,
		"backpressure_ms":    ms.BackpressureTime.Milliseconds(),
		"maint_io_reads":     ms.MaintIO.SeqReads + ms.MaintIO.RandReads,
		"maint_io_writes":    ms.MaintIO.SeqWrites,
		"last_error":         ms.LastError,
	})
}

func (s *server) handleDeleteStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// DropStream resolves the name under the DB lock, so concurrent
	// deletes race safely: the loser gets ErrUnknownStream → 404.
	if err := s.db.DropStream(name); err != nil {
		if errors.Is(err, hsq.ErrUnknownStream) {
			httpError(w, http.StatusNotFound, "unknown stream %q", name)
			return
		}
		httpError(w, http.StatusInternalServerError, "drop stream %q: %v", name, err)
		return
	}
	writeJSON(w, map[string]any{"dropped": name, "streams": s.db.Streams()})
}

func (s *server) handleQuantiles(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	var phis []float64
	for _, part := range strings.Split(r.URL.Query().Get("phi"), ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		phi, err := strconv.ParseFloat(part, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad phi %q: %v", part, err)
			return
		}
		phis = append(phis, phi)
	}
	if len(phis) == 0 {
		httpError(w, http.StatusBadRequest, "no phi values")
		return
	}
	var opts hsq.QueryOpts
	if mr := r.URL.Query().Get("max-reads"); mr != "" {
		n, err := strconv.Atoi(mr)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad max-reads %q", mr)
			return
		}
		opts.MaxReads = n
	}
	vals, qs, err := st.QuantilesOptsCtx(r.Context(), phis, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "quantiles: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"stream": st.Name(), "phi": phis, "values": vals,
		"disk_reads": qs.RandReads, "truncated": qs.Truncated,
	})
}

func (s *server) handleRank(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseInt(r.URL.Query().Get("v"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad v: %v", err)
		return
	}
	var rank int64
	if r.URL.Query().Get("quick") == "1" {
		rank, err = st.RankQuick(v)
	} else {
		rank, _, err = st.RankCtx(r.Context(), v)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "rank: %v", err)
		return
	}
	writeJSON(w, map[string]any{"stream": st.Name(), "v": v, "rank": rank, "total": st.TotalCount()})
}

// handleObserve accepts two body formats: the legacy newline-separated
// integers, and — when the body starts with '{' — a JSON object
// {"values":[...]} (or {"value": v}) applied through the ObserveSlice
// fast path, so HTTP producers can batch without speaking the binary
// protocol.
func (s *server) handleObserve(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	if first, err := peekNonSpace(br); err == nil && first == '{' {
		var body struct {
			Value  *int64  `json:"value"`
			Values []int64 `json:"values"`
		}
		dec := json.NewDecoder(br)
		if err := dec.Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		// Trailing content after the object means a malformed (e.g.
		// concatenated) body; dropping it silently would lose data.
		if _, err := dec.Token(); err != io.EOF {
			httpError(w, http.StatusBadRequest, "trailing content after JSON body")
			return
		}
		if body.Value == nil && body.Values == nil {
			httpError(w, http.StatusBadRequest, `JSON body must carry "value" or "values"`)
			return
		}
		count := 0
		if body.Value != nil {
			if err := st.ObserveCtx(r.Context(), *body.Value); err != nil {
				httpError(w, http.StatusBadRequest, "observe: %v", err)
				return
			}
			count++
		}
		if len(body.Values) > 0 {
			if err := st.ObserveSliceCtx(r.Context(), body.Values); err != nil {
				httpError(w, http.StatusBadRequest, "observe: %v", err)
				return
			}
			count += len(body.Values)
		}
		writeJSON(w, map[string]any{"stream": st.Name(), "observed": count, "stream_count": st.StreamCount()})
		return
	}
	sc := bufio.NewScanner(br)
	count := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad element %q: %v", line, err)
			return
		}
		if err := st.ObserveCtx(r.Context(), v); err != nil {
			httpError(w, http.StatusBadRequest, "observe: %v", err)
			return
		}
		count++
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	writeJSON(w, map[string]any{"stream": st.Name(), "observed": count, "stream_count": st.StreamCount()})
}

// peekNonSpace returns the first non-whitespace byte without consuming it
// (leading whitespace is consumed; it is insignificant in both body
// formats).
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		buf, err := br.Peek(1)
		if err != nil {
			return 0, err
		}
		switch buf[0] {
		case ' ', '\t', '\r', '\n':
			br.Discard(1) //nolint:errcheck
		default:
			return buf[0], nil
		}
	}
}

func (s *server) handleEndStep(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	us, err := st.EndStepCtx(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, "end step: %v", err)
		return
	}
	// REST end-steps bypass the wire apply path, so the continuous-query
	// layer needs an explicit nudge.
	s.ing.NotifyEndStep(st.Name())
	if err := st.Checkpoint(); err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"stream":   st.Name(),
		"batch":    us.BatchSize,
		"total_ms": us.TotalTime().Milliseconds(),
		"io":       us.TotalIO(),
		"merges":   us.Merges,
		"steps":    st.Steps(),
	})
}

func (s *server) handleQuantile(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	phi, err := strconv.ParseFloat(r.URL.Query().Get("phi"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad phi: %v", err)
		return
	}
	quick := r.URL.Query().Get("quick") == "1"
	windowStr := r.URL.Query().Get("window")

	var v int64
	switch {
	case windowStr != "":
		win, err := strconv.Atoi(windowStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad window: %v", err)
			return
		}
		if quick {
			v, err = st.WindowQuantileQuick(phi, win)
		} else {
			v, _, err = st.WindowQuantileCtx(r.Context(), phi, win)
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "window quantile: %v", err)
			return
		}
	case quick:
		v, err = st.QuantileQuick(phi)
		if err != nil {
			httpError(w, http.StatusBadRequest, "quick quantile: %v", err)
			return
		}
	default:
		v, _, err = st.QuantileCtx(r.Context(), phi)
		if err != nil {
			httpError(w, http.StatusBadRequest, "quantile: %v", err)
			return
		}
	}
	writeJSON(w, map[string]any{"stream": st.Name(), "phi": phi, "value": v, "quick": quick})
}

func (s *server) handleStreamStats(st *hsq.Stream, w http.ResponseWriter, r *http.Request) {
	mu := st.MemoryUsage()
	io := st.DiskStats() // per-stream: this stream's namespaced device view
	agg := s.db.DiskStats()
	pm := st.ProbeMemoStats()
	writeJSON(w, map[string]any{
		"stream":               st.Name(),
		"levels":               st.Describe(),
		"stream_count":         st.StreamCount(),
		"hist_count":           st.HistCount(),
		"total_count":          st.TotalCount(),
		"steps":                st.Steps(),
		"partitions":           st.PartitionCount(),
		"windows":              st.AvailableWindows(),
		"mem_hist":             mu.HistBytes,
		"mem_stream":           mu.StreamBytes,
		"io_seq_reads":         io.SeqReads,
		"io_seq_writes":        io.SeqWrites,
		"io_rand_reads":        io.RandReads,
		"io_cache_hits":        io.CacheHits,
		"io_cache_miss":        io.CacheMisses,
		"device_io_rand_reads": agg.RandReads,
		"probe_memo_hits":      pm.Hits,
		"probe_memo_misses":    pm.Misses,
		"probe_memo_entries":   pm.Entries,
		"probe_memo_capacity":  pm.Capacity,
	})
}
