package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestGoldenHealthz pins the liveness body: a monitoring fleet parses it,
// so it may never change shape.
func TestGoldenHealthz(t *testing.T) {
	ts := goldenServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	checkGolden(t, "healthz", body)
}

// TestGoldenCluster pins GET /cluster in both modes: the single-node
// disabled stub, and a configured 3-node membership with deterministic
// placement counts for the two golden streams (FNV placement is stable by
// construction, so the counts are part of the pinned format).
func TestGoldenCluster(t *testing.T) {
	var out bytes.Buffer

	ts := goldenServer(t)
	code, body := get(t, ts.URL+"/cluster")
	if code != http.StatusOK {
		t.Fatalf("GET /cluster (single-node): status %d", code)
	}
	fmt.Fprintf(&out, "### single node\n%s", canonicalJSON(t, body))

	// Replicas stays 1 so writes to self-owned streams have no followers:
	// nothing ever dials the fake peer addresses and the relay block stays
	// deterministically empty.
	srv, err := newServer(serverConfig{
		backend: "mem", blockFormat: "columnar", epsilon: 0.05, kappa: 3,
		nodeID:       "a",
		clusterPeers: "a=10.0.0.1:9090,b=10.0.0.2:9090,c=10.0.0.3:9090",
		replicas:     1,
		ringEpoch:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := httptest.NewServer(srv.mux())
	t.Cleanup(tc.Close)
	t.Cleanup(srv.cl.Close)
	// Create two streams locally so the placement counts are non-trivial.
	// Only streams node "a" owns can be created over REST (others would
	// forward to the unreachable fake peers), so probe for two such names.
	created := 0
	for i := 0; created < 2 && i < 10_000; i++ {
		name := fmt.Sprintf("golden-%d", i)
		if !srv.cl.Member(name) {
			continue
		}
		postBody(t, tc.URL+"/streams/"+name+"/observe", "1\n2\n3\n")
		created++
	}
	code, body = get(t, tc.URL+"/cluster")
	if code != http.StatusOK {
		t.Fatalf("GET /cluster (clustered): status %d", code)
	}
	fmt.Fprintf(&out, "### three nodes, replicas 1, two local streams\n%s", canonicalJSON(t, body))
	checkGolden(t, "cluster", out.Bytes())
}

// clusterTestServers boots an in-process 2-node hsqd pair with real
// ingest listeners, so the HTTP front doors exercise the real forwarding,
// replication and summary-fetch paths between them.
func clusterTestServers(t *testing.T, replicas int) (a, b *httptest.Server, srvA, srvB *server) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := fmt.Sprintf("a=%s,b=%s", lnA.Addr(), lnB.Addr())
	mk := func(id string, ln net.Listener) (*server, *httptest.Server) {
		srv, err := newServer(serverConfig{
			backend: "mem", epsilon: 0.02, kappa: 3,
			nodeID: id, clusterPeers: peers, replicas: replicas,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.ingAddr = ln.Addr().String()
		go srv.ing.Serve(ln) //nolint:errcheck
		ts := httptest.NewServer(srv.mux())
		t.Cleanup(func() {
			ts.Close()
			ln.Close() //nolint:errcheck
			srv.cl.Close()
		})
		return srv, ts
	}
	srvA, a = mk("a", lnA)
	srvB, b = mk("b", lnB)
	return a, b, srvA, srvB
}

// TestClusterHTTPForwarding drives writes and reads for every stream
// through ONE node's HTTP surface and verifies each stream materializes
// only on its owning shard, yet queries answer identically from both
// front doors — the coordinator-mode contract.
func TestClusterHTTPForwarding(t *testing.T) {
	tsA, tsB, srvA, srvB := clusterTestServers(t, 1)

	// Two streams, one owned by each node (probe the deterministic ring).
	streamOn := func(srv *server) string {
		for i := 0; ; i++ {
			name := fmt.Sprintf("fwd-%d", i)
			if srv.cl.Member(name) {
				return name
			}
		}
	}
	local, remote := streamOn(srvA), streamOn(srvB)

	const n = 3000
	for _, name := range []string{local, remote} {
		var body strings.Builder
		for v := 1; v <= n; v++ {
			fmt.Fprintf(&body, "%d\n", v)
		}
		// All writes go through node a — one is local, one forwards to b.
		out := postBody(t, tsA.URL+"/streams/"+name+"/observe", body.String())
		if int(out["observed"].(float64)) != n {
			t.Fatalf("observe %s: %v", name, out)
		}
		postBody(t, tsA.URL+"/streams/"+name+"/endstep", "")
	}
	if _, ok := srvA.db.Lookup(remote); ok {
		t.Fatalf("stream %s materialized on non-member a", remote)
	}
	if _, ok := srvB.db.Lookup(local); ok {
		t.Fatalf("stream %s materialized on non-member b", local)
	}
	if st, ok := srvB.db.Lookup(remote); !ok || st.TotalCount() != n {
		t.Fatalf("forwarded stream on owner: ok=%v count=%v", ok, st)
	}

	// Both front doors answer the median for both streams within ε.
	for _, ts := range []*httptest.Server{tsA, tsB} {
		for _, name := range []string{local, remote} {
			code, body := get(t, ts.URL+"/streams/"+name+"/quantile?phi=0.5")
			if code != http.StatusOK {
				t.Fatalf("quantile %s: status %d: %s", name, code, body)
			}
			v := jsonField(t, body, "value")
			if dev := v - n/2; dev < -2*0.02*n-1 || dev > 2*0.02*n+1 {
				t.Errorf("median of %s via %s = %d, want ≈%d", name, ts.URL, v, n/2)
			}
		}
		// The union query merges both shards: 2n elements, median still n/2
		// (both streams carry 1..n).
		code, body := get(t, ts.URL+"/cluster/quantile?streams="+local+","+remote+"&phi=0.5")
		if code != http.StatusOK {
			t.Fatalf("cluster quantile: status %d: %s", code, body)
		}
		if total := jsonField(t, body, "n"); total != 2*n {
			t.Errorf("union n = %d, want %d", total, 2*n)
		}
		v := jsonField(t, body, "value")
		if dev := v - n/2; dev < -3*0.02*n-1 || dev > 3*0.02*n+1 {
			t.Errorf("union median = %d, want ≈%d", v, n/2)
		}
	}

	// Remote rank and quantiles fallbacks answer from node a for b's stream.
	code, body := get(t, tsA.URL+"/streams/"+remote+"/rank?v="+fmt.Sprint(n/2))
	if code != http.StatusOK {
		t.Fatalf("remote rank: status %d: %s", code, body)
	}
	if rank := jsonField(t, body, "rank"); rank < int(0.5*n-2*0.02*n-1) || rank > int(0.5*n+2*0.02*n+1) {
		t.Errorf("remote rank(%d) = %d, want ≈%d", n/2, rank, n/2)
	}
	code, body = get(t, tsA.URL+"/streams/"+remote+"/quantiles?phi=0.25,0.75")
	if code != http.StatusOK {
		t.Fatalf("remote quantiles: status %d: %s", code, body)
	}

	// Unknown streams still 404 from every door (owner answers "no data").
	if code, _ := get(t, tsA.URL+"/streams/"+streamOn(srvB)+"x-missing/quantile?phi=0.5"); code != http.StatusNotFound && code != http.StatusOK {
		t.Errorf("missing stream: status %d", code)
	}
}

// TestClusterHTTPReplicatedWrites runs two nodes at R=2 — every stream
// lives on both — and drives all writes through one door. The ack-gated
// 200 must mean the OTHER node also applied the batch, so its DB carries
// the exact count and answers queries locally.
func TestClusterHTTPReplicatedWrites(t *testing.T) {
	tsA, _, srvA, srvB := clusterTestServers(t, 2)

	const n = 2000
	var body strings.Builder
	for v := 1; v <= n; v++ {
		fmt.Fprintf(&body, "%d\n", v)
	}
	out := postBody(t, tsA.URL+"/streams/repl/observe", body.String())
	if int(out["observed"].(float64)) != n {
		t.Fatalf("observe: %v", out)
	}
	postBody(t, tsA.URL+"/streams/repl/endstep", "")

	for who, srv := range map[string]*server{"a": srvA, "b": srvB} {
		st, ok := srv.db.Lookup("repl")
		if !ok {
			t.Fatalf("node %s: stream not materialized", who)
		}
		if err := st.SyncMaintenance(); err != nil {
			t.Fatal(err)
		}
		if got := st.TotalCount(); got != n {
			t.Errorf("node %s: count = %d, want %d", who, got, n)
		}
		if got := st.Steps(); got != 1 {
			t.Errorf("node %s: steps = %d, want 1", who, got)
		}
	}
}

// jsonField extracts an integer field from a JSON response body.
func jsonField(t *testing.T, body []byte, key string) int {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	f, ok := m[key].(float64)
	if !ok {
		t.Fatalf("no numeric %q in %s", key, body)
	}
	return int(f)
}
