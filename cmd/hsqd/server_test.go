package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/hsqclient"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(serverConfig{dir: t.TempDir(), epsilon: 0.05, kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func postBody(t *testing.T, url, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getJSON(t *testing.T, url string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	ts := newTestServer(t)

	// Observe 1..1000 in two chunks.
	var b strings.Builder
	for i := 1; i <= 500; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	out := postBody(t, ts.URL+"/observe", b.String())
	if out["observed"].(float64) != 500 {
		t.Errorf("observed = %v", out["observed"])
	}
	b.Reset()
	for i := 501; i <= 1000; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	postBody(t, ts.URL+"/observe", b.String())

	// End the step: data moves to the warehouse and is checkpointed.
	out = postBody(t, ts.URL+"/endstep", "")
	if out["batch"].(float64) != 1000 || out["steps"].(float64) != 1 {
		t.Errorf("endstep = %v", out)
	}

	// Accurate quantile: stream empty → exact median is 500.
	q, code := getJSON(t, ts.URL+"/quantile?phi=0.5")
	if code != 200 || q["value"].(float64) != 500 {
		t.Errorf("quantile = %v (code %d)", q, code)
	}
	// Quick quantile responds 200 with a plausible value.
	q, code = getJSON(t, ts.URL+"/quantile?phi=0.5&quick=1")
	if code != 200 {
		t.Errorf("quick code %d", code)
	}
	if v := q["value"].(float64); v < 300 || v > 700 {
		t.Errorf("quick value %v far from median", v)
	}
	// Windowed query over the only available window.
	q, code = getJSON(t, ts.URL+"/quantile?phi=0.5&window=1")
	if code != 200 || q["value"].(float64) != 500 {
		t.Errorf("window quantile = %v (code %d)", q, code)
	}

	// Stats endpoint.
	st, code := getJSON(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("stats code %d", code)
	}
	if st["hist_count"].(float64) != 1000 || st["partitions"].(float64) != 1 {
		t.Errorf("stats = %v", st)
	}
}

func TestServerErrors(t *testing.T) {
	ts := newTestServer(t)
	// Bad element.
	resp, err := http.Post(ts.URL+"/observe", "text/plain", strings.NewReader("notanumber\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad element: status %d", resp.StatusCode)
	}
	// Bad phi.
	if _, code := getJSON(t, ts.URL+"/quantile?phi=abc"); code != http.StatusBadRequest {
		t.Errorf("bad phi: status %d", code)
	}
	// Query with no data.
	if _, code := getJSON(t, ts.URL+"/quantile?phi=0.5"); code != http.StatusBadRequest {
		t.Errorf("empty query: status %d", code)
	}
	// Bad window.
	postBody(t, ts.URL+"/observe", "1\n2\n3\n")
	postBody(t, ts.URL+"/endstep", "")
	if _, code := getJSON(t, ts.URL+"/quantile?phi=0.5&window=99"); code != http.StatusBadRequest {
		t.Errorf("misaligned window: status %d", code)
	}
	if _, code := getJSON(t, ts.URL+"/quantile?phi=0.5&window=x"); code != http.StatusBadRequest {
		t.Errorf("non-numeric window: status %d", code)
	}
}

func TestServerResume(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(serverConfig{dir: dir, epsilon: 0.05, kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	postBody(t, ts.URL+"/observe", "1\n2\n3\n4\n5\n")
	postBody(t, ts.URL+"/endstep", "")
	ts.Close()

	// Resume is automatic: a fresh server on the same dir reopens the DB
	// manifest and with it the "default" stream.
	srv2, err := newServer(serverConfig{dir: dir, epsilon: 0.05, kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.mux())
	defer ts2.Close()
	q, code := getJSON(t, ts2.URL+"/quantile?phi=0.5")
	if code != 200 || q["value"].(float64) != 3 {
		t.Errorf("resumed quantile = %v (code %d)", q, code)
	}
}

// TestServerMultiStream drives two named streams end-to-end over HTTP —
// independent data, per-stream queries and stats, a restart that resumes
// both streams, and a DELETE — the tentpole's REST surface.
func TestServerMultiStream(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(serverConfig{dir: dir, epsilon: 0.05, kappa: 3, cacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())

	// Two streams with disjoint value ranges.
	var lat, size strings.Builder
	for i := 1; i <= 500; i++ {
		fmt.Fprintf(&lat, "%d\n", i)
		fmt.Fprintf(&size, "%d\n", 100000+i)
	}
	out := postBody(t, ts.URL+"/streams/api.latency/observe", lat.String())
	if out["stream"].(string) != "api.latency" || out["observed"].(float64) != 500 {
		t.Errorf("observe = %v", out)
	}
	postBody(t, ts.URL+"/streams/api.size/observe", size.String())
	postBody(t, ts.URL+"/streams/api.latency/endstep", "")
	postBody(t, ts.URL+"/streams/api.size/endstep", "")

	// Per-stream quantiles see only their own data.
	q, code := getJSON(t, ts.URL+"/streams/api.latency/quantile?phi=0.5")
	if code != 200 || q["value"].(float64) != 250 {
		t.Errorf("latency median = %v (code %d)", q, code)
	}
	q, code = getJSON(t, ts.URL+"/streams/api.size/quantile?phi=0.5")
	if code != 200 || q["value"].(float64) != 100250 {
		t.Errorf("size median = %v (code %d)", q, code)
	}
	// Batched quantiles with an I/O budget.
	q, code = getJSON(t, ts.URL+"/streams/api.latency/quantiles?phi=0.25,0.75&max-reads=1000")
	if code != 200 {
		t.Fatalf("quantiles code %d", code)
	}
	if vals := q["values"].([]any); len(vals) != 2 || vals[0].(float64) != 125 {
		t.Errorf("latency quantiles = %v", vals)
	}
	// Unknown stream → 404 on queries; listing shows both streams.
	if _, code := getJSON(t, ts.URL+"/streams/nope/quantile?phi=0.5"); code != 404 {
		t.Errorf("unknown stream: code %d", code)
	}
	ls, code := getJSON(t, ts.URL+"/streams")
	if code != 200 {
		t.Fatalf("streams code %d", code)
	}
	if streams := ls["streams"].([]any); len(streams) != 2 {
		t.Errorf("streams = %v", streams)
	}
	// Per-stream stats carry per-stream I/O.
	st, code := getJSON(t, ts.URL+"/streams/api.latency/stats")
	if code != 200 || st["hist_count"].(float64) != 500 {
		t.Errorf("latency stats = %v (code %d)", st, code)
	}
	ts.Close()

	// Restart: both streams resume from the DB manifest.
	srv2, err := newServer(serverConfig{dir: dir, epsilon: 0.05, kappa: 3, cacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.mux())
	defer ts2.Close()
	q, code = getJSON(t, ts2.URL+"/streams/api.size/quantile?phi=0.5")
	if code != 200 || q["value"].(float64) != 100250 {
		t.Errorf("resumed size median = %v (code %d)", q, code)
	}
	q, code = getJSON(t, ts2.URL+"/streams/api.latency/quantile?phi=0.99")
	if code != 200 || q["value"].(float64) != 495 {
		t.Errorf("resumed latency p99 = %v (code %d)", q, code)
	}

	// DELETE drops the stream; it is gone from the listing and queries 404.
	req, err := http.NewRequest(http.MethodDelete, ts2.URL+"/streams/api.size", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete code %d", resp.StatusCode)
	}
	if _, code := getJSON(t, ts2.URL+"/streams/api.size/quantile?phi=0.5"); code != 404 {
		t.Errorf("deleted stream query: code %d", code)
	}
	ls, _ = getJSON(t, ts2.URL+"/streams")
	if streams := ls["streams"].([]any); len(streams) != 1 {
		t.Errorf("streams after delete = %v", streams)
	}
}

// TestServerLegacyMigration upgrades a pre-multi-stream warehouse (flat
// part files + root MANIFEST.json, as older hsqd wrote) in place: the data
// must come back as the "default" stream.
func TestServerLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	eng, err := hsq.New(hsq.Config{Epsilon: 0.05, Kappa: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 1000; i++ {
		eng.Observe(i)
	}
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // writes the legacy root manifest
		t.Fatal(err)
	}

	srv, err := newServer(serverConfig{dir: dir, epsilon: 0.05, kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	// Legacy endpoint answers from the migrated history.
	q, code := getJSON(t, ts.URL+"/quantile?phi=0.5")
	if code != 200 || q["value"].(float64) != 500 {
		t.Errorf("migrated quantile = %v (code %d)", q, code)
	}
	st, code := getJSON(t, ts.URL+"/streams/default/stats")
	if code != 200 || st["hist_count"].(float64) != 1000 {
		t.Errorf("migrated stats = %v (code %d)", st, code)
	}
}

func TestServerQuantilesAndRank(t *testing.T) {
	ts := newTestServer(t)
	var b strings.Builder
	for i := 1; i <= 1000; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	postBody(t, ts.URL+"/observe", b.String())
	postBody(t, ts.URL+"/endstep", "")

	q, code := getJSON(t, ts.URL+"/quantiles?phi=0.25,0.5,0.75")
	if code != 200 {
		t.Fatalf("quantiles code %d", code)
	}
	vals := q["values"].([]any)
	if len(vals) != 3 || vals[0].(float64) != 250 || vals[1].(float64) != 500 || vals[2].(float64) != 750 {
		t.Errorf("quantiles = %v", vals)
	}
	if _, code := getJSON(t, ts.URL+"/quantiles?phi="); code != 400 {
		t.Errorf("empty phis: code %d", code)
	}
	if _, code := getJSON(t, ts.URL+"/quantiles?phi=0.5,abc"); code != 400 {
		t.Errorf("bad phi list: code %d", code)
	}

	rk, code := getJSON(t, ts.URL+"/rank?v=500")
	if code != 200 || rk["rank"].(float64) != 500 {
		t.Errorf("rank = %v (code %d)", rk, code)
	}
	rk, code = getJSON(t, ts.URL+"/rank?v=500&quick=1")
	if code != 200 {
		t.Fatalf("quick rank code %d", code)
	}
	if r := rk["rank"].(float64); r < 350 || r > 650 {
		t.Errorf("quick rank = %v", r)
	}
	if _, code := getJSON(t, ts.URL+"/rank?v=abc"); code != 400 {
		t.Errorf("bad rank value: code %d", code)
	}

	st, code := getJSON(t, ts.URL+"/stats")
	if code != 200 || st["levels"] == nil {
		t.Errorf("stats levels missing: %v", st)
	}
}

// TestObserveJSONBatch pins the batched JSON observe surface: a
// {"values":[...]} body lands through ObserveSlice, a {"value":v} body
// observes one element, and both coexist with the legacy newline format
// on the same route.
func TestObserveJSONBatch(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/streams/batched/observe"

	out := postBody(t, url, `{"values":[1,2,3,4,5]}`)
	if out["observed"].(float64) != 5 {
		t.Fatalf("batched observed = %v, want 5", out["observed"])
	}
	out = postBody(t, url, `{"value": 6}`)
	if out["observed"].(float64) != 1 {
		t.Fatalf("single observed = %v, want 1", out["observed"])
	}
	out = postBody(t, url, "7\n8\n")
	if out["observed"].(float64) != 2 {
		t.Fatalf("legacy observed = %v, want 2", out["observed"])
	}
	if out["stream_count"].(float64) != 8 {
		t.Fatalf("stream_count = %v, want 8", out["stream_count"])
	}
	// Leading whitespace must not confuse the format sniffing.
	out = postBody(t, url, "  \n\t {\"values\":[9]}")
	if out["observed"].(float64) != 1 {
		t.Fatalf("whitespace-prefixed JSON observed = %v, want 1", out["observed"])
	}

	// Malformed JSON is a 400, not a silent legacy-parse.
	resp, err := http.Post(url, "application/json", strings.NewReader(`{"values":[1,`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// A JSON body with neither key is a 400 too.
	resp2, err := http.Post(url, "application/json", strings.NewReader(`{"nope": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("keyless JSON: status %d, want 400", resp2.StatusCode)
	}
}

// TestIngestEndpointOverHTTP checks GET /ingest reflects wire traffic:
// data pushed through hsqclient shows up in the aggregate, per-stream and
// per-connection counters, and the enriched GET /streams carries the
// stream's ingest tally.
func TestIngestEndpointOverHTTP(t *testing.T) {
	srv, err := newServer(serverConfig{backend: "mem", epsilon: 0.05, kappa: 3, logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ingAddr = l.Addr().String()
	go srv.ing.Serve(l)                                          //nolint:errcheck
	t.Cleanup(func() { srv.ing.Shutdown(context.Background()) }) //nolint:errcheck

	c, err := hsqclient.Dial(srv.ingAddr, hsqclient.WithBatchSize(100))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stream("wired")
	for v := int64(1); v <= 300; v++ {
		if err := st.Observe(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	out, code := getJSON(t, ts.URL+"/ingest")
	if code != http.StatusOK {
		t.Fatalf("GET /ingest: status %d", code)
	}
	if got := out["values"].(float64); got != 300 {
		t.Fatalf("/ingest values = %v, want 300", got)
	}
	if got := out["active_conns"].(float64); got != 1 {
		t.Fatalf("/ingest active_conns = %v, want 1", got)
	}
	streams := out["streams"].(map[string]any)
	ws := streams["wired"].(map[string]any)
	if ws["values"].(float64) != 300 || ws["end_steps"].(float64) != 1 {
		t.Fatalf("/ingest per-stream = %v, want 300 values / 1 end_step", ws)
	}
	conns := out["conns"].([]any)
	if len(conns) != 1 {
		t.Fatalf("/ingest conns = %v, want 1 entry", conns)
	}
	if sess := conns[0].(map[string]any)["session"].(string); sess != c.Session() {
		t.Fatalf("conn session = %q, want %q", sess, c.Session())
	}

	out, code = getJSON(t, ts.URL+"/streams")
	if code != http.StatusOK {
		t.Fatalf("GET /streams: status %d", code)
	}
	for _, s := range out["streams"].([]any) {
		sm := s.(map[string]any)
		if sm["name"] == "wired" {
			if sm["ingest_values"].(float64) != 300 {
				t.Fatalf("/streams ingest_values = %v, want 300", sm["ingest_values"])
			}
		}
	}
	if ing := out["ingest"].(map[string]any); ing["values"].(float64) != 300 {
		t.Fatalf("/streams ingest block = %v, want 300 values", ing)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
