package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/query"
)

// maxQueryBody bounds a POST /query plan document. Plans are small JSON
// objects; anything near this limit is malformed or hostile.
const maxQueryBody = 1 << 20

// handleQuery answers POST /query: a composable query plan in, per-group
// quantile envelopes out. The body is the JSON plan (internal/query.Plan):
//
//	{"match": "api.*", "group_by": 2, "phis": [0.5, 0.99],
//	 "window": {"steps": 10, "slide": 5, "count": 3}, "as_of_step": 0}
//
// Single-node, every summary is local (cold streams answer from their
// sealed sidecars without hydrating). In cluster mode explicit streams
// other shards own are answered through the shard-summary fan-out —
// full-history scope only, matching the per-stream remote read paths;
// glob patterns expand against this node's directory.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxQueryBody {
		httpError(w, http.StatusRequestEntityTooLarge, "plan exceeds %d bytes", maxQueryBody)
		return
	}
	plan, err := query.ParsePlan(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad plan: %v", err)
		return
	}
	var res *query.Result
	if s.cl == nil {
		res, err = s.db.RunPlan(plan)
	} else {
		res, err = query.Exec(&clusterSource{s: s, ctx: r.Context()}, plan)
	}
	if err != nil {
		status := http.StatusBadRequest
		var fe *fetchError
		if errors.As(err, &fe) {
			status = http.StatusBadGateway
		}
		httpError(w, status, "query: %v", err)
		return
	}
	writeJSON(w, res)
}

// fetchError marks a cluster-transport failure (502, not the 400 a bad
// plan earns).
type fetchError struct {
	name string
	err  error
}

func (e *fetchError) Error() string {
	return fmt.Sprintf("fetch summary for %q: %v", e.name, e.err)
}

func (e *fetchError) Unwrap() error { return e.err }

// clusterSource is the cluster-aware query source: streams this node
// stores answer locally (scoped, sidecar-aware), streams other shards own
// answer through the cached shard-summary fan-out. Remote streams carry
// only full-history summaries over the wire, so scoped (window/as-of)
// plans refuse them — ask a member node, like the other remote read
// paths.
type clusterSource struct {
	s   *server
	ctx context.Context
}

func (cs *clusterSource) StreamNames() []string { return cs.s.db.Streams() }

func (cs *clusterSource) ScopedSummary(name string, sc query.Scope) (*core.ShardSummary, error) {
	s := cs.s
	if s.cl.Member(name) {
		return s.db.ScopedSummary(name, sc)
	}
	if !sc.IsFull() {
		return nil, fmt.Errorf("windowed/as-of queries are not available for remote stream %q; ask a member node", name)
	}
	sum, err := s.shardSummary(cs.ctx, name)
	if err != nil {
		return nil, &fetchError{name: name, err: err}
	}
	// nil means no data anywhere reachable: an empty contribution, the
	// same contract as /cluster/quantile.
	return sum, nil
}
