package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/wire"
)

// The golden files pin the exact JSON wire format of the read-side REST
// surface and the exact text of error bodies, so a handler refactor cannot
// silently change what clients parse. Regenerate intentionally with:
//
//	go test ./cmd/hsqd -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden files instead of comparing")

// goldenServer builds a server with a fixed, fully deterministic state: the
// mem backend (no directory, no platform-dependent I/O), two streams with
// known data, one completed step each. Nothing here may depend on timing,
// and the block format is pinned so the pinned I/O counters don't shift
// with the HSQ_BLOCK_FORMAT environment.
func goldenServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(serverConfig{backend: "mem", blockFormat: "columnar", epsilon: 0.05, kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	var lat, size strings.Builder
	for i := 1; i <= 500; i++ {
		fmt.Fprintf(&lat, "%d\n", i)
		fmt.Fprintf(&size, "%d\n", 100000+i)
	}
	postBody(t, ts.URL+"/streams/api.latency/observe", lat.String())
	postBody(t, ts.URL+"/streams/api.size/observe", size.String())
	postBody(t, ts.URL+"/streams/api.latency/endstep", "")
	postBody(t, ts.URL+"/streams/api.size/endstep", "")
	return ts
}

// checkGolden compares got against testdata/<name>.golden, or rewrites the
// file under -update-golden.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// canonicalJSON re-encodes a JSON body with sorted keys and stable
// indentation, so the golden comparison is about content, not encoder
// incidentals.
func canonicalJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestGoldenStreams pins GET /streams: the stream directory with per-stream
// counters plus the shared-device aggregate.
func TestGoldenStreams(t *testing.T) {
	ts := goldenServer(t)
	code, body := get(t, ts.URL+"/streams")
	if code != http.StatusOK {
		t.Fatalf("GET /streams: status %d", code)
	}
	checkGolden(t, "streams", canonicalJSON(t, body))
}

// TestGoldenStreamStats pins GET /streams/{name}/stats, the widest response
// shape on the surface (levels, windows, memory and I/O counters).
func TestGoldenStreamStats(t *testing.T) {
	ts := goldenServer(t)
	code, body := get(t, ts.URL+"/streams/api.latency/stats")
	if code != http.StatusOK {
		t.Fatalf("GET stats: status %d", code)
	}
	checkGolden(t, "stream_stats", canonicalJSON(t, body))
	// The legacy /stats route must serve the identical shape (from the
	// "default" stream); pin it too so the two surfaces cannot drift apart.
	postBody(t, ts.URL+"/observe", "1\n2\n3\n4\n5\n")
	postBody(t, ts.URL+"/endstep", "")
	code, body = get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	checkGolden(t, "legacy_stats", canonicalJSON(t, body))
}

// TestGoldenQueryShapes pins the query response envelopes (quantile,
// quantiles, rank) on exact, deterministic data.
func TestGoldenQueryShapes(t *testing.T) {
	ts := goldenServer(t)
	var out bytes.Buffer
	for _, url := range []string{
		"/streams/api.latency/quantile?phi=0.5",
		"/streams/api.latency/quantile?phi=0.5&quick=1",
		"/streams/api.latency/quantile?phi=0.5&window=1",
		"/streams/api.latency/quantiles?phi=0.25,0.75&max-reads=100",
		"/streams/api.latency/rank?v=250",
	} {
		code, body := get(t, ts.URL+url)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		fmt.Fprintf(&out, "### GET %s\n%s", url, canonicalJSON(t, body))
	}
	checkGolden(t, "queries", out.Bytes())
}

// TestGoldenQueryPlan pins POST /query: the composable-plan envelope
// (merge, glob + group-by, window, as-of) and its plan-error bodies.
func TestGoldenQueryPlan(t *testing.T) {
	ts := goldenServer(t)
	var out bytes.Buffer
	post := func(plan string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(plan))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "### POST /query %s\nstatus %d\n", plan, resp.StatusCode)
		if resp.StatusCode == http.StatusOK {
			out.Write(canonicalJSON(t, body))
		} else {
			out.Write(body)
		}
	}
	post(`{"streams":["api.latency","api.size"],"phis":[0.5,0.99]}`)
	post(`{"match":"api.*","group_by":2,"phis":[0.5]}`)
	post(`{"streams":["api.latency"],"window":{"steps":1},"phis":[0.5]}`)
	post(`{"streams":["api.latency"],"as_of_step":1,"phis":[0.5]}`)
	post(`{"phis":[0.5]}`)
	post(`{"streams":["api.latency"],"phis":[1.5]}`)
	post(`{"streams":["nope"],"phis":[0.5]}`)
	post(`{"match":"api.[","phis":[0.5]}`)
	checkGolden(t, "query_plan", out.Bytes())
}

// TestGoldenErrors pins the error bodies: status codes and exact text.
func TestGoldenErrors(t *testing.T) {
	ts := goldenServer(t)
	var out bytes.Buffer
	record := func(method, url, body string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "### %s %s\nstatus %d\n%s", method, url, resp.StatusCode, b)
	}
	record(http.MethodGet, "/streams/api.latency/quantile?phi=abc", "")
	record(http.MethodGet, "/streams/api.latency/quantile?phi=0.5&window=99", "")
	record(http.MethodGet, "/streams/api.latency/quantiles?phi=", "")
	record(http.MethodGet, "/streams/api.latency/quantiles?phi=0.5&max-reads=-1", "")
	record(http.MethodGet, "/streams/api.latency/rank?v=abc", "")
	record(http.MethodGet, "/streams/nope/quantile?phi=0.5", "")
	record(http.MethodGet, "/streams/nope/stats", "")
	record(http.MethodDelete, "/streams/nope", "")
	record(http.MethodPost, "/streams/api.latency/observe", "notanumber\n")
	record(http.MethodPost, "/streams/bad/name/observe", "1\n")
	checkGolden(t, "errors", out.Bytes())
}

// goldenMaintServer builds a deterministic server in manual maintenance
// mode: every endstep seals without installing, so the maintenance surface
// shows a reproducible backlog (no timing, no worker pool).
func goldenMaintServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := newServer(serverConfig{backend: "mem", blockFormat: "columnar", epsilon: 0.05, kappa: 3, maintenance: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	var lat strings.Builder
	for i := 1; i <= 500; i++ {
		fmt.Fprintf(&lat, "%d\n", i)
	}
	postBody(t, ts.URL+"/streams/api.latency/observe", lat.String())
	postBody(t, ts.URL+"/streams/api.latency/endstep", "")
	return ts
}

// TestGoldenMaintenance pins GET /streams/{name}/maintenance in both the
// synchronous default (empty backlog) and manual mode (one sealed step
// pending), plus the scheduler block of GET /streams with a backlog.
func TestGoldenMaintenance(t *testing.T) {
	var out bytes.Buffer
	ts := goldenServer(t)
	code, body := get(t, ts.URL+"/streams/api.latency/maintenance")
	if code != http.StatusOK {
		t.Fatalf("GET maintenance (sync): status %d", code)
	}
	fmt.Fprintf(&out, "### sync\n%s", canonicalJSON(t, body))

	tm := goldenMaintServer(t)
	code, body = get(t, tm.URL+"/streams/api.latency/maintenance")
	if code != http.StatusOK {
		t.Fatalf("GET maintenance (manual): status %d", code)
	}
	fmt.Fprintf(&out, "### manual, one sealed step\n%s", canonicalJSON(t, body))

	code, body = get(t, tm.URL+"/streams")
	if code != http.StatusOK {
		t.Fatalf("GET /streams (manual): status %d", code)
	}
	fmt.Fprintf(&out, "### manual /streams scheduler block\n%s", canonicalJSON(t, body))
	checkGolden(t, "maintenance", out.Bytes())
}

// goldenIngest drives a fully deterministic raw-wire session against the
// server's ingest pipeline: fixed session token, fixed frames, fixed
// values. Only the connection's remote port is nondeterministic; the
// golden canonicalization below redacts it.
func goldenIngest(t *testing.T, srv *server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() //nolint:errcheck
	served := make(chan struct{})
	go func() {
		defer close(served)
		nc, err := l.Accept()
		if err != nil {
			return
		}
		srv.ing.ServeConn(nc)
	}()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		nc.Close() //nolint:errcheck
		<-served
	})
	w, r := wire.NewWriter(nc), wire.NewReader(nc)
	send := func(f *wire.Frame) {
		t.Helper()
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	send(&wire.Frame{Type: wire.TypeHello, Version: wire.Version, Session: "golden-session"})
	if f, err := r.ReadFrame(); err != nil || f.Type != wire.TypeWelcome {
		t.Fatalf("welcome: %v %v", f, err)
	}
	vals := make([]int64, 250)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	send(&wire.Frame{Type: wire.TypeOpenStream, StreamID: 1, Name: "wire.stream"})
	send(&wire.Frame{Type: wire.TypeBatch, Seq: 1, StreamID: 1, Values: vals})
	send(&wire.Frame{Type: wire.TypeBatch, Seq: 2, StreamID: 1, Values: vals})
	send(&wire.Frame{Type: wire.TypeEndStep, Seq: 3, StreamID: 1})
	send(&wire.Frame{Type: wire.TypeFlush, Seq: 3})
	// The endstep ack confirms everything up to seq 3 is applied; the
	// flush ack repeats it. Both must arrive before the snapshot.
	for i := 0; i < 2; i++ {
		if f, err := r.ReadFrame(); err != nil || f.Type != wire.TypeAck || f.Seq != 3 {
			t.Fatalf("ack %d: %v %v", i, f, err)
		}
	}
}

// redactRemote hides the one nondeterministic field of the ingest
// snapshot (the client's ephemeral port).
var remotePattern = regexp.MustCompile(`"remote": "[^"]*"`)

func redactRemote(body []byte) []byte {
	return remotePattern.ReplaceAll(body, []byte(`"remote": "127.0.0.1:<port>"`))
}

// TestGoldenIngest pins GET /ingest (live connection with counters, then
// the post-disconnect state) and the ingest enrichment of GET /streams.
func TestGoldenIngest(t *testing.T) {
	srv, err := newServer(serverConfig{backend: "mem", blockFormat: "columnar", epsilon: 0.05, kappa: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	code, body := get(t, ts.URL+"/ingest")
	if code != http.StatusOK {
		t.Fatalf("GET /ingest (idle): status %d", code)
	}
	fmt.Fprintf(&out, "### idle\n%s", canonicalJSON(t, body))

	goldenIngest(t, srv)
	code, body = get(t, ts.URL+"/ingest")
	if code != http.StatusOK {
		t.Fatalf("GET /ingest (live): status %d", code)
	}
	fmt.Fprintf(&out, "### one live connection, 500 values applied\n%s",
		redactRemote(canonicalJSON(t, body)))

	code, body = get(t, ts.URL+"/streams")
	if code != http.StatusOK {
		t.Fatalf("GET /streams (wire-fed): status %d", code)
	}
	fmt.Fprintf(&out, "### /streams after wire ingest\n%s", canonicalJSON(t, body))
	checkGolden(t, "ingest", out.Bytes())
}
