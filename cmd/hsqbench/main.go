// Command hsqbench regenerates the paper's evaluation figures and the
// repository's ablations at a chosen scale.
//
// Usage:
//
//	hsqbench [-figure all|4|5|...|13|ablation-split|ablation-pinning|baselines|theory|columnar]
//	         [-scale small|medium|large] [-backend file|mem] [-cache-blocks N]
//	         [-block-format columnar|raw] [-out results/]
//
// Each figure prints one aligned text table per panel (matching the paper's
// figure layout) and, with -out, writes one CSV per panel.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hsqbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure  = flag.String("figure", "all", "figure id to regenerate, or 'all'")
		scale   = flag.String("scale", "medium", "experiment scale: small|medium|large")
		backend = flag.String("backend", "file", "warehouse storage backend: file|mem")
		cache   = flag.Int("cache-blocks", 0, "block-cache capacity in blocks (0 = no cache)")
		format  = flag.String("block-format", "", "partition file layout: columnar|raw (default columnar)")
		out     = flag.String("out", "", "directory for CSV output (optional)")
		list    = flag.Bool("list", false, "list available figures and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.FigureIDs() {
			fmt.Println(id)
		}
		return nil
	}
	sc, err := experiments.ScaleByName(*scale)
	if err != nil {
		return err
	}
	sc.Backend = *backend
	sc.CacheBlocks = *cache
	sc.BlockFormat = *format
	ids := []string{*figure}
	if *figure == "all" {
		ids = experiments.FigureIDs()
	}
	for _, id := range ids {
		if err := experiments.Run(id, sc, os.Stdout, *out); err != nil {
			return err
		}
	}
	return nil
}
