// Command hsqgen writes workload datasets to binary element files (flat
// little-endian int64), for feeding external tools or repeated runs — and,
// with -replay, streams a dataset into a running hsqd over the binary
// ingest protocol for load testing.
//
// Usage:
//
//	hsqgen -workload uniform|normal|wikipedia|nettrace|zipf -n 1000000 \
//	       -seed 1 -o data.bin
//
//	# replay an existing dataset file through hsqclient:
//	hsqgen -replay localhost:9090 -i data.bin -stream load.test -step 100000
//
//	# or generate-and-stream directly, no file:
//	hsqgen -replay localhost:9090 -workload zipf -n 10000000 -step 500000
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/hsqclient"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hsqgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl   = flag.String("workload", "uniform", "workload name")
		n    = flag.Int64("n", 1_000_000, "number of elements")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("o", "", "output file (required unless -replay)")

		replay = flag.String("replay", "", "stream elements to an hsqd ingest listener (host:port) instead of writing a file")
		in     = flag.String("i", "", "input dataset file to replay (flat little-endian int64); with -replay unset -i is invalid, with -replay set but -i unset the workload flags generate the elements")
		stream = flag.String("stream", "default", "target stream name for -replay")
		step   = flag.Int64("step", 0, "with -replay, end a step every this many elements (0 = one step at the end)")
		batch  = flag.Int("batch", 0, "with -replay, client batch size (0 = hsqclient default)")
	)
	flag.Parse()

	if *replay != "" {
		return runReplay(*replay, *in, *wl, *stream, *n, *seed, *step, *batch)
	}
	if *in != "" {
		return fmt.Errorf("-i requires -replay")
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	gen, err := workload.ByName(*wl, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var buf [8]byte
	for i := int64(0); i < *n; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(gen.Next()))
		if _, err := bw.Write(buf[:]); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s elements to %s\n", *n, *wl, *out)
	return nil
}

// source yields elements until exhaustion (file) or a count (generator).
type source interface {
	next() (int64, bool, error)
	describe() string
}

type fileSource struct {
	name string
	br   *bufio.Reader
	buf  [8]byte
}

func (s *fileSource) next() (int64, bool, error) {
	_, err := io.ReadFull(s.br, s.buf[:])
	if errors.Is(err, io.EOF) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("read %s: %w", s.name, err)
	}
	return int64(binary.LittleEndian.Uint64(s.buf[:])), true, nil
}

func (s *fileSource) describe() string { return s.name }

type genSource struct {
	gen  workload.Generator
	name string
	left int64
}

func (s *genSource) next() (int64, bool, error) {
	if s.left <= 0 {
		return 0, false, nil
	}
	s.left--
	return s.gen.Next(), true, nil
}

func (s *genSource) describe() string { return s.name + " generator" }

// runReplay streams a dataset through hsqclient, reporting throughput.
func runReplay(addr, in, wl, stream string, n, seed, step int64, batch int) error {
	var src source
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck
		src = &fileSource{name: in, br: bufio.NewReaderSize(f, 1<<20)}
	} else {
		if n <= 0 {
			return fmt.Errorf("-n must be positive")
		}
		gen, err := workload.ByName(wl, seed)
		if err != nil {
			return err
		}
		src = &genSource{gen: gen, name: wl, left: n}
	}

	var opts []hsqclient.Option
	if batch > 0 {
		opts = append(opts, hsqclient.WithBatchSize(batch))
	}
	opts = append(opts,
		// A load generator should ride out a server restart but not spin
		// forever against a server that is gone.
		hsqclient.WithMaxReconnectAttempts(10),
		hsqclient.WithLogf(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}))
	c, err := hsqclient.Dial(addr, opts...)
	if err != nil {
		return err
	}
	st := c.Stream(stream)

	start := time.Now()
	var sent, steps int64
	for {
		v, ok, err := src.next()
		if err != nil {
			c.Close() //nolint:errcheck
			return err
		}
		if !ok {
			break
		}
		if err := st.Observe(v); err != nil {
			c.Close() //nolint:errcheck
			return err
		}
		sent++
		if step > 0 && sent%step == 0 {
			if err := st.EndStep(); err != nil {
				c.Close() //nolint:errcheck
				return err
			}
			steps++
		}
	}
	if sent > 0 && (step == 0 || sent%step != 0) {
		if err := st.EndStep(); err != nil {
			c.Close() //nolint:errcheck
			return err
		}
		steps++
	}
	if err := c.Close(); err != nil { // Close flushes and waits for acks
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d elements (%s) to %s stream %q in %s — %.0f values/s, %d steps\n",
		sent, src.describe(), addr, stream, elapsed.Round(time.Millisecond),
		float64(sent)/elapsed.Seconds(), steps)
	return nil
}
