// Command hsqgen writes workload datasets to binary element files (flat
// little-endian int64), for feeding external tools or repeated runs.
//
// Usage:
//
//	hsqgen -workload uniform|normal|wikipedia|nettrace|zipf -n 1000000 \
//	       -seed 1 -o data.bin
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "hsqgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl   = flag.String("workload", "uniform", "workload name")
		n    = flag.Int64("n", 1_000_000, "number of elements")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	gen, err := workload.ByName(*wl, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var buf [8]byte
	for i := int64(0); i < *n; i++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(gen.Next()))
		if _, err := bw.Write(buf[:]); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d %s elements to %s\n", *n, *wl, *out)
	return nil
}
