package hsq

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/disk"
)

// ErrUnknownStream is returned (wrapped, with the name) by operations on a
// stream the DB does not host; test with errors.Is.
var ErrUnknownStream = errors.New("hsq: unknown stream")

// Options configures a DB. It is the same knob set as Config: Epsilon,
// Kappa and the accuracy/behavior options apply to every stream the DB
// hosts, while Backend, Dir, CacheBlocks, BlockSize and SimulateDisk
// describe the one shared device all streams multiplex.
// MaxHydratedStreams bounds how many streams keep a memory-resident engine
// at once (see Config).
type Options = Config

// dbManifestName is the DB-level manifest (stream directory) on the root
// of the device.
const dbManifestName = "DB.json"

// streamNamespacePrefix is where stream state lives on the device:
// streams/<name>/{MANIFEST.json, part-*.dat}.
const streamNamespacePrefix = "streams"

const dbManifestVersion = 1

// dbManifest is the durable stream directory: which named streams exist,
// so Open can resume all of them after a restart. Per-stream layout lives
// in each stream's own manifest under its namespace.
type dbManifest struct {
	Version int      `json:"version"`
	Streams []string `json:"streams"`
}

// streamEntry is one registered stream in the DB's directory. The entry is
// a lightweight descriptor — a few pointers and counters — that exists for
// every registered stream; the engine it points at is hydrated lazily on
// first touch and may be evicted (sealed back to its on-disk manifest)
// while the stream is idle, so a DB can host millions of registered
// streams with only the hot set resident.
//
// Locking: the map-visible fields (eng, pins, seq, view, dropped, facade)
// are guarded by db.mu. Slow state transitions — hydration, eviction,
// drop — additionally serialize on opMu, the per-name singleflight lock,
// which is always acquired before db.mu and never while holding it. The
// fast path (pinning an already-hydrated engine) takes only db.mu, so one
// stream's cold open can never stall another stream's operations.
//
// dropped marks a tombstone. While a tombstoned entry is still present in
// db.dir, a DropStream has committed the directory removal but is still
// destroying the stream's files: the name stays claimed — Stream waits the
// destroy out, RegisterStreams rejects it, the manifest writer skips it —
// so no new stream can hydrate over the half-deleted namespace. The
// dropper deletes the entry once the destroy succeeds; on a destroy
// failure the tombstone stays (the namespace holds partial debris) until
// the next Open collects the orphans. A dropped entry no longer in db.dir
// is just a dead handle: every operation through it reports ErrClosed.
type streamEntry struct {
	name string
	opMu sync.Mutex

	// view is the stream's namespaced device view, created on first
	// hydration and cached for the entry's lifetime: per-stream I/O
	// counters live on the view, so reusing it across hydrate/evict
	// cycles keeps the counters cumulative and the per-stream sum equal
	// to the device aggregate.
	view    *disk.Manager
	eng     *Engine // nil while cold (not hydrated)
	pins    int     // in-flight operations holding eng; eviction skips pinned entries
	seq     uint64  // LRU clock value of the last touch
	dropped bool
	facade  *Stream
}

// DB hosts many named quantile streams over one shared device: one storage
// backend, one block-cache budget, one manifest root. Each stream is a full
// Engine (Observe/EndStep/Quantile/Rank/Window surface) running on a
// namespaced view of the device, so streams are isolated on disk and in
// per-stream I/O accounting while competing for — and benefiting from —
// the same cache. DB is safe for concurrent use.
//
// The stream directory distinguishes registered from hydrated streams:
// every stream listed in the DB manifest is registered (a lightweight
// descriptor, ~100 bytes), but an engine — GK sketch, partition summaries,
// maintenance state — is hydrated only on first touch, outside the DB
// lock, with per-name singleflight. With Config.MaxHydratedStreams set,
// idle streams are sealed (durably checkpointed) and evicted in LRU order,
// so resident memory tracks the hot set, not the directory size. Open
// loads only the directory: restart cost is O(registered streams), with
// each stream's summary-rebuild scan deferred to its first touch.
//
//	db, err := hsq.Open(hsq.Options{Epsilon: 0.01, Dir: dir, CacheBlocks: 4096})
//	lat, err := db.Stream("api.latency")
//	lat.Observe(17)
//	...
//	p99, _, err := lat.Quantile(0.99)
type DB struct {
	mu    sync.Mutex
	opts  Config
	dev   *disk.Manager // root view: aggregate stats, shared cache
	sched *scheduler    // DB-wide background maintenance pool (async mode)
	dir   map[string]*streamEntry
	seq   uint64 // LRU clock, incremented on every touch

	hydrated   int // entries with eng != nil
	hydrations uint64
	evictions  uint64
	closed     bool
	dirDirty   bool // directory written but its durability sync failed
}

// Open opens (or creates) a multi-stream DB on the configured device. If
// the device holds a DB manifest from a previous run, every stream listed
// in it is registered — but not hydrated: each stream's engine (and its
// one-sequential-scan summary rebuild) is loaded lazily on the stream's
// first touch, so Open costs O(directory), not O(total data), and a daemon
// with a huge, mostly-cold stream directory restarts in constant-ish time.
func Open(opts Options) (*DB, error) {
	full, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	dev, err := newDevice(full)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: full, dev: dev, dir: make(map[string]*streamEntry)}
	if full.mode() == maintAsync {
		// One bounded worker pool shared by every stream of the DB: installs
		// and merges from all streams compete for the same MaintenanceWorkers
		// goroutines, with per-stream FIFO ordering (see maintenance.go).
		db.sched = newScheduler(full.MaintenanceWorkers)
	}
	if !dev.Exists(dbManifestName) && dev.Exists(manifestName) {
		// A root-level store manifest without a DB manifest is a legacy
		// single-stream warehouse (written by Engine.Checkpoint/Close).
		// Opening a DB over it would silently ignore all its data.
		return nil, fmt.Errorf("hsq: %s holds a legacy single-stream warehouse (root %s, no %s); resume it with OpenEngine, or move its files into %s/<name>/ (setting the manifest's \"namespace\") to adopt it as a DB stream",
			full.Dir, manifestName, dbManifestName, streamNamespacePrefix)
	}
	registered := map[string]bool{}
	if dev.Exists(dbManifestName) {
		data, err := dev.ReadMeta(dbManifestName)
		if err != nil {
			return nil, fmt.Errorf("hsq: read DB manifest: %w", err)
		}
		var m dbManifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("hsq: parse DB manifest: %w", err)
		}
		if m.Version != dbManifestVersion {
			return nil, fmt.Errorf("hsq: DB manifest version %d, want %d", m.Version, dbManifestVersion)
		}
		for _, name := range m.Streams {
			if registered[name] {
				continue
			}
			registered[name] = true
			db.dir[name] = &streamEntry{name: name}
		}
	}
	if err := db.collectUnregisteredStreams(registered); err != nil {
		return nil, err
	}
	return db, nil
}

// collectUnregisteredStreams removes the on-disk state of stream
// namespaces that the (committed) DB manifest does not list. They are
// crash debris: either a DropStream that committed the directory update
// but died before finishing the destroy, or a stream created and written
// whose registration never became durable. Per the durability contract,
// a stream missing from the committed directory has an empty prefix of
// completed steps — its files are orphans.
func (db *DB) collectUnregisteredStreams(registered map[string]bool) error {
	names, err := db.dev.List(streamNamespacePrefix + "/")
	if err != nil {
		return fmt.Errorf("hsq: list stream namespaces: %w", err)
	}
	for _, name := range names {
		rel := strings.TrimPrefix(name, streamNamespacePrefix+"/")
		stream, _, ok := strings.Cut(rel, "/")
		if !ok || registered[stream] {
			continue
		}
		if err := db.dev.Remove(name); err != nil {
			return fmt.Errorf("hsq: collect unregistered stream %q: %w", stream, err)
		}
	}
	return nil
}

// ValidStreamName reports whether name can name a stream: one namespace
// segment (letters, digits, '.', '_', '-'; no '/').
func ValidStreamName(name string) error {
	if strings.Contains(name, "/") {
		return fmt.Errorf("hsq: stream name %q must not contain '/'", name)
	}
	if err := disk.ValidNamespace(name); err != nil {
		return fmt.Errorf("hsq: invalid stream name %q", name)
	}
	return nil
}

// facadeLocked returns the entry's Stream handle, creating it on first
// request. Caller holds db.mu. Lazily allocated so a directory of millions
// of never-touched registered streams costs one small struct each.
func (db *DB) facadeLocked(ent *streamEntry) *Stream {
	if ent.facade == nil {
		ent.facade = &Stream{name: ent.name, db: db, ent: ent}
	}
	return ent.facade
}

// touchLocked records a use of the entry for LRU eviction ordering.
// Caller holds db.mu.
func (db *DB) touchLocked(ent *streamEntry) {
	db.seq++
	ent.seq = db.seq
}

// acquire returns the entry's hydrated engine with a pin held; the caller
// must call the returned release when its operation completes. While an
// entry is pinned it cannot be evicted, so queries, ingest batches and
// maintenance barriers never lose their engine mid-operation.
//
// The fast path (engine already hydrated) takes only db.mu — a map lookup
// and two counter bumps. The cold path hydrates outside db.mu under the
// entry's opMu: concurrent callers of the same stream singleflight behind
// one hydration, while operations on other streams proceed untouched. This
// is the structural fix for the historical cold-open stall, where one
// stream's manifest load and summary-rebuild scan blocked the whole DB.
func (db *DB) acquire(ent *streamEntry) (*Engine, func(), error) {
	db.mu.Lock()
	eng, release, err, done := db.tryAcquireLocked(ent)
	db.mu.Unlock()
	if done {
		return eng, release, err
	}

	// Cold: hydrate under the per-name singleflight lock, outside db.mu.
	ent.opMu.Lock()
	defer ent.opMu.Unlock()
	// Re-check: the hydration race may have been lost while waiting.
	db.mu.Lock()
	eng, release, err, done = db.tryAcquireLocked(ent)
	view := ent.view
	db.mu.Unlock()
	if done {
		return eng, release, err
	}

	if view == nil {
		v, nsErr := db.dev.Namespace(streamNamespacePrefix + "/" + ent.name)
		if nsErr != nil {
			return nil, nil, nsErr
		}
		db.mu.Lock()
		ent.view = v
		view = v
		db.mu.Unlock()
	}
	resume := view.Exists(manifestName)
	fresh, err := newEngineOn(view, db.opts, streamNamespacePrefix+"/"+ent.name, resume)
	if err != nil {
		return nil, nil, fmt.Errorf("hsq: hydrate stream %q: %w", ent.name, err)
	}
	fresh.sched = db.sched

	db.mu.Lock()
	if db.closed || ent.dropped {
		closed := db.closed
		db.mu.Unlock()
		// The DB closed (or the stream was dropped) while we hydrated;
		// nothing was mutated, so discard the engine quietly.
		fresh.Close() //nolint:errcheck // freshly hydrated, nothing to lose
		if closed {
			return nil, nil, ErrClosed
		}
		return nil, nil, fmt.Errorf("hsq: stream %q dropped: %w", ent.name, ErrClosed)
	}
	ent.eng = fresh
	ent.pins++
	db.hydrated++
	db.hydrations++
	db.touchLocked(ent)
	victims := db.evictVictimsLocked()
	db.mu.Unlock()
	db.evict(victims)
	return fresh, func() { db.release(ent) }, nil
}

// tryAcquireLocked is acquire's fast path. Caller holds db.mu. done
// reports whether the acquire finished (successfully or with an error);
// !done means the entry is cold and the caller must hydrate.
func (db *DB) tryAcquireLocked(ent *streamEntry) (_ *Engine, _ func(), _ error, done bool) {
	if db.closed {
		return nil, nil, ErrClosed, true
	}
	if ent.dropped {
		// Stale handle to a dropped stream: same contract as the closed
		// engine the handle used to embed, so callers racing a DropStream
		// keep seeing ErrClosed, never an I/O error.
		return nil, nil, fmt.Errorf("hsq: stream %q dropped: %w", ent.name, ErrClosed), true
	}
	if ent.eng == nil {
		return nil, nil, nil, false
	}
	ent.pins++
	db.touchLocked(ent)
	return ent.eng, func() { db.release(ent) }, nil, true
}

// release drops one pin and, if the hydration that pinned alongside us
// pushed the DB over its budget while every candidate was pinned, retries
// the eviction now that this entry is idle again.
func (db *DB) release(ent *streamEntry) {
	db.mu.Lock()
	ent.pins--
	victims := db.evictVictimsLocked()
	db.mu.Unlock()
	db.evict(victims)
}

// evictVictimsLocked selects least-recently-used hydrated, unpinned
// entries until the hydrated count is back within MaxHydratedStreams.
// Entries with a live observe buffer are not candidates at all — evictOne
// would refuse them anyway, and selecting them would burn the whole
// victim quota on unevictable streams while sealed idle engines sit past
// the budget. Caller holds db.mu. Selection only — the actual
// seal-and-close runs in evict, outside db.mu.
func (db *DB) evictVictimsLocked() []*streamEntry {
	max := db.opts.MaxHydratedStreams
	if max <= 0 || db.hydrated <= max || db.closed {
		return nil
	}
	var cands []*streamEntry
	for _, ent := range db.dir {
		if ent.eng != nil && !ent.dropped && ent.pins == 0 && ent.eng.StreamCount() == 0 {
			cands = append(cands, ent)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	need := db.hydrated - max
	if need > len(cands) {
		need = len(cands)
	}
	return cands[:need]
}

// evict seals and dehydrates the victim entries, one at a time.
func (db *DB) evict(victims []*streamEntry) {
	for _, ent := range victims {
		db.evictOne(ent)
	}
}

// evictOne seals one idle stream back to its on-disk manifest and drops
// its engine. Sealing is a durable checkpoint: Engine.Close drains the
// maintenance backlog, commits the manifest and waits out pinned queries,
// so an evicted stream loses nothing — its next touch rehydrates the exact
// same state. Entries that would lose state are skipped: a pinned entry
// (in-flight operation), a non-empty observe buffer (only EndStep may cut
// a batch), or — in async mode — a sealed backlog, which is requeued to
// the scheduler instead so the evictor never stalls behind another
// stream's merges. The budget is therefore a target the DB converges to,
// not a hard cap.
func (db *DB) evictOne(ent *streamEntry) {
	ent.opMu.Lock()
	defer ent.opMu.Unlock()
	db.mu.Lock()
	eng := ent.eng
	if db.closed || ent.dropped || eng == nil || ent.pins > 0 ||
		db.opts.MaxHydratedStreams <= 0 || db.hydrated <= db.opts.MaxHydratedStreams {
		db.mu.Unlock()
		return
	}
	if eng.StreamCount() > 0 {
		// A live observe buffer is volatile only across process death;
		// sealing here would silently drop it. Keep the stream resident.
		db.mu.Unlock()
		return
	}
	if db.sched != nil && eng.maintPending() {
		// Hand the backlog to the scheduler rather than draining it on
		// this caller; a later eviction pass collects the stream once the
		// installs finish.
		db.mu.Unlock()
		db.sched.enqueue(eng)
		return
	}
	// Detach before closing: a concurrent fast-path acquire either pinned
	// the entry before this point (pins > 0 above, so we bailed) or finds
	// eng == nil and waits on opMu for the eviction to finish.
	ent.eng = nil
	db.hydrated--
	db.evictions++
	db.mu.Unlock()

	// Capture the cold summary before Close makes the engine unreadable:
	// past the detach no new operation can reach this engine (fast-path
	// acquires see eng == nil and park on opMu, in-flight pins bailed us
	// out above), so the captured state is exactly what Close seals.
	parts, steps, total, summaryOK := eng.sealedParts()

	if err := eng.Close(); err != nil {
		// The engine may be half-closed but its state is still durable up
		// to the failure; restore it so nothing is lost and surface the
		// failure on the next operation that touches the stream — unless
		// the DB closed (or the stream dropped) meanwhile, in which case
		// nothing will ever close it again and restoring would only make a
		// closed DB report a hydrated engine.
		db.mu.Lock()
		if !db.closed && !ent.dropped {
			ent.eng = eng
			db.hydrated++
			db.evictions--
		}
		db.mu.Unlock()
		return
	}
	if summaryOK {
		// The stream is now durably sealed and cold; publish its summary
		// sidecar so glob/group-by queries answer it without rehydrating.
		db.writeSidecar(ent.name, parts, steps, total) //nolint:errcheck // advisory: queries fall back to hydration
	}
}

// Stream returns the named stream, creating it on first use (and recording
// it in the DB manifest so a restart finds it). The returned *Stream is
// shared: every caller asking for the same name gets the same stream. The
// call hydrates the stream's engine if it is cold — registration itself is
// one atomic manifest write under the DB lock; the hydration (manifest
// read plus summary-rebuild scan) runs outside it, so a slow cold open
// never blocks operations on other streams.
func (db *DB) Stream(name string) (*Stream, error) {
	var (
		ent     *streamEntry
		st      *Stream
		created bool
	)
	for {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return nil, ErrClosed
		}
		e, ok := db.dir[name]
		if ok && e.dropped {
			// The name is tombstoned: a DropStream committed the removal
			// and is still destroying files under e.opMu. Re-creating the
			// name now would let the new stream hydrate from the old,
			// not-yet-deleted manifest — and lose its fresh files to the
			// in-flight destroy. Wait the destroy out, then retry.
			db.mu.Unlock()
			e.opMu.Lock() // parks until the dropper finishes its destroy
			db.mu.Lock()
			failed := db.dir[name] == e && e.dropped
			db.mu.Unlock()
			e.opMu.Unlock()
			if failed {
				// The destroy failed and left its tombstone: the namespace
				// holds partially deleted files, so the name stays
				// unavailable until the next Open collects them.
				return nil, fmt.Errorf("hsq: stream %q dropped: %w", name, ErrClosed)
			}
			continue
		}
		if !ok {
			if err := ValidStreamName(name); err != nil {
				db.mu.Unlock()
				return nil, err
			}
			e = &streamEntry{name: name}
			db.dir[name] = e
			if err := db.saveManifestLocked(); err != nil {
				delete(db.dir, name)
				db.mu.Unlock()
				return nil, err
			}
			created = true
		}
		ent = e
		st = db.facadeLocked(e)
		db.mu.Unlock()
		break
	}

	_, release, err := db.acquire(ent)
	if err != nil {
		if created {
			// Best-effort unregistration: the stream never hydrated, so
			// removing its directory entry leaves no on-disk debris beyond
			// what the next Open's orphan collection reclaims.
			db.mu.Lock()
			if db.dir[name] == ent && ent.eng == nil && ent.pins == 0 && !ent.dropped {
				// Tombstone before deleting: a hydration of this entry we
				// raced (another caller lost the singleflight, re-entered,
				// and is loading outside db.mu right now) re-checks dropped
				// before installing its engine, so it discards the engine
				// instead of hydrating into an entry that is no longer in
				// the directory — which would leak it past eviction and
				// Close while a later Stream(name) doubled the namespace.
				ent.dropped = true
				delete(db.dir, name)
				db.saveManifestLocked() //nolint:errcheck // unregistration is advisory here
			}
			db.mu.Unlock()
		}
		return nil, err
	}
	release()
	return st, nil
}

// RegisterStreams registers the named streams in the directory — one
// durable manifest commit for the whole batch — without hydrating any of
// them. It is the bulk-provisioning path for large fleets (per-user or
// per-sensor stream sets), where registering names one Stream call at a
// time would rewrite the directory once per name. Already-registered names
// are skipped; a name whose DropStream is still destroying files is
// rejected (retry once the drop completes). On a validation, conflict or
// commit error nothing is registered; after a durability (sync) error the
// batch is registered in memory and a retry of the call re-syncs it.
func (db *DB) RegisterStreams(names ...string) error {
	for _, name := range names {
		if err := ValidStreamName(name); err != nil {
			return err
		}
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	added := make([]string, 0, len(names))
	for _, name := range names {
		if ent, ok := db.dir[name]; ok {
			if ent.dropped {
				// Mid-destroy tombstone: registering over it would hand the
				// new stream a namespace still being deleted. Stream waits
				// such a drop out; a bulk register reports the conflict.
				for _, a := range added {
					delete(db.dir, a)
				}
				db.mu.Unlock()
				return fmt.Errorf("hsq: stream %q is being dropped; retry when the drop completes", name)
			}
			continue
		}
		db.dir[name] = &streamEntry{name: name}
		added = append(added, name)
	}
	if len(added) == 0 && !db.dirDirty {
		db.mu.Unlock()
		return nil
	}
	if len(added) > 0 {
		if err := db.saveManifestLocked(); err != nil {
			for _, name := range added {
				delete(db.dir, name)
			}
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Unlock()
	// The device-wide durability sync runs outside db.mu: a slow flush must
	// not stall every other stream's fast-path acquire. On failure the
	// batch stays registered in memory and in the written (not yet durable)
	// directory; dirDirty makes a retry — even one that adds no new names —
	// repeat the sync instead of short-circuiting.
	if err := db.dev.Sync(); err != nil {
		db.mu.Lock()
		db.dirDirty = true
		db.mu.Unlock()
		return err
	}
	db.mu.Lock()
	db.dirDirty = false
	db.mu.Unlock()
	return nil
}

// Lookup returns the named stream without creating it (and without
// hydrating it: a cold stream's engine loads on its first operation, not
// on Lookup). After Close, Lookup reports every name as not found —
// handing out streams from a closed DB would leak handles whose every
// operation fails with ErrClosed. A stream mid-DropStream is likewise not
// found: its removal is already committed.
func (db *DB) Lookup(name string) (*Stream, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false
	}
	ent, ok := db.dir[name]
	if !ok || ent.dropped {
		return nil, false
	}
	return db.facadeLocked(ent), true
}

// Streams returns the names of all registered streams, sorted
// lexicographically. The slice is a point-in-time snapshot of the
// directory under one acquisition of the DB lock: streams registered or
// dropped afterwards are not reflected, and two concurrent calls may
// observe different sets. The sorted order is part of the contract —
// query-layer glob expansion and GET /streams both iterate it, so their
// output is deterministic for a given directory state.
func (db *DB) Streams() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.dir))
	for name, ent := range db.dir {
		if ent.dropped {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DropStream destroys the named stream: its partitions and manifest are
// removed from the device and it disappears from the stream directory.
//
// The drop is committed first — the stream directory without the stream is
// durably written before any file is deleted — so a crash mid-destroy
// leaves only unregistered orphan files, which the next Open collects. The
// reverse order would risk a committed directory pointing at a
// half-destroyed stream. Until the destroy finishes, the entry stays in
// the directory as a tombstone claiming the name (Stream waits, Register
// rejects): re-creating the stream mid-destroy would let it hydrate from
// the old, not-yet-deleted manifest while its fresh files were swept away.
// If the destroy itself fails, the tombstone — and the error — stand, and
// the name stays unavailable until the next Open collects the debris.
func (db *DB) DropStream(name string) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	ent, ok := db.dir[name]
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	// opMu serializes the drop against an in-flight hydration or eviction
	// of the same stream (so the engine below is stable) and parks Stream
	// callers waiting to re-create the name until the destroy completes.
	ent.opMu.Lock()
	defer ent.opMu.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if ent.dropped || db.dir[name] != ent {
		db.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	// Tombstone rather than delete: saveManifestLocked skips dropped
	// entries, so this one write is the commit, while the entry itself
	// keeps the name claimed until the files are gone.
	ent.dropped = true
	if err := db.saveManifestLocked(); err != nil {
		// WriteMeta is atomic: the failed write left the old directory (with
		// the stream) on the device, so memory and disk still agree.
		ent.dropped = false
		db.mu.Unlock()
		return err
	}
	db.mu.Unlock()
	// The device-wide durability sync runs outside db.mu — a slow flush
	// must not stall every other stream's fast-path acquire; opMu alone
	// keeps the drop serialized against this stream.
	if err := db.dev.Sync(); err != nil {
		// The device now holds a directory without the stream; abandoning
		// the drop in memory alone would let any later device-wide sync make
		// that directory durable and a subsequent Open destroy a live
		// stream's data. Rewrite the directory with the stream restored.
		db.mu.Lock()
		ent.dropped = false
		serr := db.saveManifestLocked()
		db.mu.Unlock()
		if serr != nil {
			return errors.Join(err, serr)
		}
		return err
	}
	db.mu.Lock()
	if db.closed {
		// Close raced in after the commit and owns every attached engine
		// now. The drop itself is durable — the stream's files are
		// unregistered orphans the next Open collects — but the destroy
		// cannot proceed over a closing device.
		db.mu.Unlock()
		return ErrClosed
	}
	eng := ent.eng
	if eng != nil {
		ent.eng = nil
		db.hydrated--
	}
	db.mu.Unlock()
	var derr error
	if eng != nil {
		// Destroy waits out pinned queries before deleting partition
		// files, so in-flight reads never see files vanish mid-search.
		derr = eng.Destroy()
	} else {
		derr = db.destroyColdStream(name)
	}
	if derr != nil {
		return derr
	}
	// The engine only destroys files it owns; the DB-level summary sidecar
	// must not survive into a re-created stream of the same name.
	db.dropSidecar(name)
	db.mu.Lock()
	if db.dir[name] == ent {
		delete(db.dir, name)
	}
	db.mu.Unlock()
	return nil
}

// destroyColdStream removes the on-disk files of a stream that has no
// hydrated engine. The directory commit already removed the stream, so a
// failure (or crash) mid-removal leaves only orphans for the next Open.
func (db *DB) destroyColdStream(name string) error {
	files, err := db.dev.List(streamNamespacePrefix + "/" + name + "/")
	if err != nil {
		return fmt.Errorf("hsq: drop stream %q: %w", name, err)
	}
	for _, f := range files {
		if err := db.dev.Remove(f); err != nil {
			return fmt.Errorf("hsq: drop stream %q: %w", name, err)
		}
	}
	return nil
}

// saveManifestLocked writes the stream directory atomically, excluding
// tombstoned entries (their removal is the commit a DropStream already
// made). Caller holds db.mu.
func (db *DB) saveManifestLocked() error {
	m := dbManifest{Version: dbManifestVersion}
	for name, ent := range db.dir {
		if ent.dropped {
			continue
		}
		m.Streams = append(m.Streams, name)
	}
	sort.Strings(m.Streams)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("hsq: marshal DB manifest: %w", err)
	}
	if err := db.dev.WriteMeta(dbManifestName, data); err != nil {
		return fmt.Errorf("hsq: write DB manifest: %w", err)
	}
	return nil
}

// pinHydrated pins every currently-hydrated stream and returns the pinned
// entries with their engines; the caller must release() each. Used by
// DB-wide barriers (Checkpoint, WaitIdle) so eviction cannot close an
// engine mid-barrier. Cold streams need no work: eviction sealed them
// durably, and never-touched streams were durable to begin with.
func (db *DB) pinHydrated() (ents []*streamEntry, engs []*Engine) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		// Close detached every engine; nothing is left to pin.
		return nil, nil
	}
	for _, ent := range db.dir {
		if ent.eng != nil && !ent.dropped {
			ent.pins++
			ents = append(ents, ent)
			engs = append(engs, ent.eng)
		}
	}
	return ents, engs
}

// Checkpoint persists every hydrated stream's manifest plus the stream
// directory, each write atomic on the backend, so a multi-stream daemon
// can restart cleanly with Open. Cold (evicted or never-touched) streams
// are already durable and cost nothing. As with Engine.Checkpoint,
// in-flight (unloaded) stream batches are volatile by design — but steps
// already sealed by EndStep are durable whether or not their background
// installs have run. Checkpoint does not wait for the maintenance backlog;
// call WaitIdle first for a fully-merged on-disk layout.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.mu.Unlock()
	ents, engs := db.pinHydrated()
	defer func() {
		for _, ent := range ents {
			db.release(ent)
		}
	}()
	for i, eng := range engs {
		if err := eng.Checkpoint(); err != nil {
			return fmt.Errorf("hsq: checkpoint stream %q: %w", ents[i].name, err)
		}
		// Refresh the stream's cold-summary sidecar while its durable state
		// is known: representable (fully installed, empty buffer) states are
		// written, others drop any stale sidecar so cold reads fall back to
		// hydration instead of chasing the manifest cross-check.
		if parts, steps, total, ok := eng.sealedParts(); ok {
			db.writeSidecar(ents[i].name, parts, steps, total) //nolint:errcheck // advisory
		} else {
			db.dropSidecar(ents[i].name)
		}
	}
	db.mu.Lock()
	if err := db.saveManifestLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	db.mu.Unlock()
	return db.dev.Sync()
}

// Close seals every hydrated stream — maintenance backlog drained,
// manifest committed — marks the DB closed, stops the background scheduler
// and releases the shared backend (when it implements io.Closer).
//
// The DB is marked closed first and exactly once: even if sealing a stream
// fails, every other stream is still sealed, the directory is still
// committed, and every later operation (and Lookup) observes the closed
// state. All failures along the way are joined into the returned error.
// Close is idempotent; Destroy-like cleanup is per-stream via DropStream.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	var names []string
	var engs []*Engine
	for name, ent := range db.dir {
		if ent.eng != nil {
			names = append(names, name)
			engs = append(engs, ent.eng)
			// Detach now, under db.mu: once the DB is closed, nothing may
			// see these engines as hydrated — DirectoryStats must not
			// report stale counts and pinHydrated barriers racing Close
			// must not pin engines that are about to be sealed.
			ent.eng = nil
		}
	}
	db.hydrated = 0
	db.mu.Unlock()

	var errs []error
	for i, eng := range engs {
		// As in evictOne: capture the sidecar state before Close, write it
		// after the seal succeeds. If an in-flight operation raced the
		// capture the sidecar may go stale against the final manifest; the
		// cold read's manifest cross-check rejects it and hydrates instead.
		parts, steps, total, summaryOK := eng.sealedParts()
		if err := eng.Close(); err != nil {
			errs = append(errs, fmt.Errorf("hsq: close stream %q: %w", names[i], err))
		} else if summaryOK {
			db.writeSidecar(names[i], parts, steps, total) //nolint:errcheck // advisory
		}
	}
	if db.sched != nil {
		db.sched.close()
	}
	db.mu.Lock()
	if err := db.saveManifestLocked(); err != nil {
		errs = append(errs, err)
	}
	db.mu.Unlock()
	if err := db.dev.Sync(); err != nil {
		errs = append(errs, err)
	}
	if c, ok := db.dev.Backend().(io.Closer); ok {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// DiskStats returns the device-wide aggregate I/O counters: the sum of
// every stream's per-stream IOStats (metadata I/O is never counted).
func (db *DB) DiskStats() IOStats {
	return fromDisk(db.dev.Stats())
}

// StreamStats returns the per-stream I/O counters for every registered
// stream. Each stream's counters cover exactly the block I/O issued
// through its namespaced device view — they survive eviction and
// rehydration, so the values always sum to DiskStats. Streams never
// hydrated this process report zero.
func (db *DB) StreamStats() map[string]IOStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]IOStats, len(db.dir))
	for name, ent := range db.dir {
		if ent.dropped {
			continue
		}
		if ent.view != nil {
			out[name] = fromDisk(ent.view.Stats())
		} else {
			out[name] = IOStats{}
		}
	}
	return out
}

// DirectoryStats describes the stream directory's hydration state.
type DirectoryStats struct {
	// Registered is the number of streams in the directory; Hydrated of
	// those currently hold a memory-resident engine.
	Registered int
	Hydrated   int
	// MaxHydrated echoes Config.MaxHydratedStreams (0 = unlimited).
	MaxHydrated int
	// Hydrations and Evictions count engine loads and LRU seals since
	// Open. Hydrations > Registered means streams have cycled.
	Hydrations uint64
	Evictions  uint64
}

// DirectoryStats returns the directory's registered/hydrated breakdown and
// the cumulative hydration/eviction counters.
func (db *DB) DirectoryStats() DirectoryStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	registered := 0
	for _, ent := range db.dir {
		if !ent.dropped { // tombstones of in-flight drops are not registered
			registered++
		}
	}
	return DirectoryStats{
		Registered:  registered,
		Hydrated:    db.hydrated,
		MaxHydrated: db.opts.MaxHydratedStreams,
		Hydrations:  db.hydrations,
		Evictions:   db.evictions,
	}
}

// CacheBlocks returns the number of blocks currently resident in the
// shared cache.
func (db *DB) CacheBlocks() int { return db.dev.CacheBlocks() }

// MaintenanceMode returns the resolved maintenance mode every stream of
// this DB runs under ("sync", "async" or "manual") — the value after
// Config defaulting, so callers never re-derive the resolution rule.
func (db *DB) MaintenanceMode() string { return db.opts.Maintenance }
