package hsq

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/disk"
)

// ErrUnknownStream is returned (wrapped, with the name) by operations on a
// stream the DB does not host; test with errors.Is.
var ErrUnknownStream = errors.New("hsq: unknown stream")

// Options configures a DB. It is the same knob set as Config: Epsilon,
// Kappa and the accuracy/behavior options apply to every stream the DB
// hosts, while Backend, Dir, CacheBlocks, BlockSize and SimulateDisk
// describe the one shared device all streams multiplex.
type Options = Config

// dbManifestName is the DB-level manifest (stream directory) on the root
// of the device.
const dbManifestName = "DB.json"

// streamNamespacePrefix is where stream state lives on the device:
// streams/<name>/{MANIFEST.json, part-*.dat}.
const streamNamespacePrefix = "streams"

const dbManifestVersion = 1

// dbManifest is the durable stream directory: which named streams exist,
// so Open can resume all of them after a restart. Per-stream layout lives
// in each stream's own manifest under its namespace.
type dbManifest struct {
	Version int      `json:"version"`
	Streams []string `json:"streams"`
}

// DB hosts many named quantile streams over one shared device: one storage
// backend, one block-cache budget, one manifest root. Each stream is a full
// Engine (Observe/EndStep/Quantile/Rank/Window surface) running on a
// namespaced view of the device, so streams are isolated on disk and in
// per-stream I/O accounting while competing for — and benefiting from —
// the same cache. DB is safe for concurrent use.
//
//	db, err := hsq.Open(hsq.Options{Epsilon: 0.01, Dir: dir, CacheBlocks: 4096})
//	lat, err := db.Stream("api.latency")
//	lat.Observe(17)
//	...
//	p99, _, err := lat.Quantile(0.99)
type DB struct {
	mu      sync.Mutex
	opts    Config
	dev     *disk.Manager // root view: aggregate stats, shared cache
	sched   *scheduler    // DB-wide background maintenance pool (async mode)
	streams map[string]*Stream
	closed  bool
}

// Open opens (or creates) a multi-stream DB on the configured device. If
// the device holds a DB manifest from a previous run, every stream listed
// in it is reopened — partition summaries are rebuilt with one sequential
// scan each — so a daemon restarts with its full stream directory.
func Open(opts Options) (*DB, error) {
	full, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	dev, err := newDevice(full)
	if err != nil {
		return nil, err
	}
	db := &DB{opts: full, dev: dev, streams: make(map[string]*Stream)}
	if full.mode() == maintAsync {
		// One bounded worker pool shared by every stream of the DB: installs
		// and merges from all streams compete for the same MaintenanceWorkers
		// goroutines, with per-stream FIFO ordering (see maintenance.go).
		db.sched = newScheduler(full.MaintenanceWorkers)
	}
	if !dev.Exists(dbManifestName) && dev.Exists(manifestName) {
		// A root-level store manifest without a DB manifest is a legacy
		// single-stream warehouse (written by Engine.Checkpoint/Close).
		// Opening a DB over it would silently ignore all its data.
		return nil, fmt.Errorf("hsq: %s holds a legacy single-stream warehouse (root %s, no %s); resume it with OpenEngine, or move its files into %s/<name>/ (setting the manifest's \"namespace\") to adopt it as a DB stream",
			full.Dir, manifestName, dbManifestName, streamNamespacePrefix)
	}
	registered := map[string]bool{}
	if dev.Exists(dbManifestName) {
		data, err := dev.ReadMeta(dbManifestName)
		if err != nil {
			return nil, fmt.Errorf("hsq: read DB manifest: %w", err)
		}
		var m dbManifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("hsq: parse DB manifest: %w", err)
		}
		if m.Version != dbManifestVersion {
			return nil, fmt.Errorf("hsq: DB manifest version %d, want %d", m.Version, dbManifestVersion)
		}
		for _, name := range m.Streams {
			registered[name] = true
			if _, err := db.openStreamLocked(name); err != nil {
				return nil, fmt.Errorf("hsq: reopen stream %q: %w", name, err)
			}
		}
	}
	if err := db.collectUnregisteredStreams(registered); err != nil {
		return nil, err
	}
	return db, nil
}

// collectUnregisteredStreams removes the on-disk state of stream
// namespaces that the (committed) DB manifest does not list. They are
// crash debris: either a DropStream that committed the directory update
// but died before finishing the destroy, or a stream created and written
// whose registration never became durable. Per the durability contract,
// a stream missing from the committed directory has an empty prefix of
// completed steps — its files are orphans.
func (db *DB) collectUnregisteredStreams(registered map[string]bool) error {
	names, err := db.dev.List(streamNamespacePrefix + "/")
	if err != nil {
		return fmt.Errorf("hsq: list stream namespaces: %w", err)
	}
	for _, name := range names {
		rel := strings.TrimPrefix(name, streamNamespacePrefix+"/")
		stream, _, ok := strings.Cut(rel, "/")
		if !ok || registered[stream] {
			continue
		}
		if err := db.dev.Remove(name); err != nil {
			return fmt.Errorf("hsq: collect unregistered stream %q: %w", stream, err)
		}
	}
	return nil
}

// ValidStreamName reports whether name can name a stream: one namespace
// segment (letters, digits, '.', '_', '-'; no '/').
func ValidStreamName(name string) error {
	if strings.Contains(name, "/") {
		return fmt.Errorf("hsq: stream name %q must not contain '/'", name)
	}
	if err := disk.ValidNamespace(name); err != nil {
		return fmt.Errorf("hsq: invalid stream name %q", name)
	}
	return nil
}

// openStreamLocked opens (resuming if its manifest exists) or creates the
// named stream. Caller holds db.mu.
func (db *DB) openStreamLocked(name string) (*Stream, error) {
	if s, ok := db.streams[name]; ok {
		return s, nil
	}
	if err := ValidStreamName(name); err != nil {
		return nil, err
	}
	ns := streamNamespacePrefix + "/" + name
	view, err := db.dev.Namespace(ns)
	if err != nil {
		return nil, err
	}
	resume := view.Exists(manifestName)
	eng, err := newEngineOn(view, db.opts, ns, resume)
	if err != nil {
		return nil, err
	}
	eng.sched = db.sched
	s := &Stream{Engine: eng, name: name, db: db}
	db.streams[name] = s
	return s, nil
}

// Stream returns the named stream, creating it on first use (and recording
// it in the DB manifest so a restart finds it). The returned *Stream is
// shared: every caller asking for the same name gets the same stream.
func (db *DB) Stream(name string) (*Stream, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if s, ok := db.streams[name]; ok {
		return s, nil
	}
	s, err := db.openStreamLocked(name)
	if err != nil {
		return nil, err
	}
	if err := db.saveManifestLocked(); err != nil {
		delete(db.streams, name)
		return nil, err
	}
	return s, nil
}

// Lookup returns the named stream without creating it.
func (db *DB) Lookup(name string) (*Stream, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.streams[name]
	return s, ok
}

// Streams returns the names of all live streams, sorted.
func (db *DB) Streams() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.streams))
	for name := range db.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DropStream destroys the named stream: its partitions and manifest are
// removed from the device and it disappears from the stream directory.
//
// The drop is committed first — the stream directory without the stream is
// durably written before any file is deleted — so a crash mid-destroy
// leaves only unregistered orphan files, which the next Open collects. The
// reverse order would risk a committed directory pointing at a
// half-destroyed stream.
func (db *DB) DropStream(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	s, ok := db.streams[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	delete(db.streams, name)
	if err := db.saveManifestLocked(); err != nil {
		// WriteMeta is atomic: the failed write left the old directory (with
		// the stream) on the device, so memory and disk still agree.
		db.streams[name] = s
		return err
	}
	if err := db.dev.Sync(); err != nil {
		// The device now holds a directory without the stream; abandoning
		// the drop in memory alone would let any later device-wide sync make
		// that directory durable and a subsequent Open destroy a live
		// stream's data. Rewrite the directory with the stream restored.
		db.streams[name] = s
		if serr := db.saveManifestLocked(); serr != nil {
			return errors.Join(err, serr)
		}
		return err
	}
	return s.Engine.Destroy()
}

// saveManifestLocked writes the stream directory atomically. Caller holds
// db.mu.
func (db *DB) saveManifestLocked() error {
	m := dbManifest{Version: dbManifestVersion}
	for name := range db.streams {
		m.Streams = append(m.Streams, name)
	}
	sort.Strings(m.Streams)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("hsq: marshal DB manifest: %w", err)
	}
	if err := db.dev.WriteMeta(dbManifestName, data); err != nil {
		return fmt.Errorf("hsq: write DB manifest: %w", err)
	}
	return nil
}

// Checkpoint persists every stream's manifest plus the stream directory,
// each write atomic on the backend, so a multi-stream daemon can restart
// cleanly with Open. As with Engine.Checkpoint, in-flight (unloaded) stream
// batches are volatile by design — but steps already sealed by EndStep are
// durable whether or not their background installs have run. Checkpoint
// does not wait for the maintenance backlog; call WaitIdle first for a
// fully-merged on-disk layout.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	for name, s := range db.streams {
		if err := s.Engine.Checkpoint(); err != nil {
			return fmt.Errorf("hsq: checkpoint stream %q: %w", name, err)
		}
	}
	if err := db.saveManifestLocked(); err != nil {
		return err
	}
	return db.dev.Sync()
}

// Close drains every stream's maintenance backlog, checkpoints every
// stream and the stream directory, marks every stream closed, stops the
// background scheduler, and releases the shared backend (when it implements
// io.Closer). Close is idempotent; Destroy-like cleanup is per-stream via
// DropStream.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	for name, s := range db.streams {
		if err := s.Engine.Close(); err != nil {
			return fmt.Errorf("hsq: close stream %q: %w", name, err)
		}
	}
	if db.sched != nil {
		db.sched.close()
	}
	if err := db.saveManifestLocked(); err != nil {
		return err
	}
	if err := db.dev.Sync(); err != nil {
		return err
	}
	db.closed = true
	if c, ok := db.dev.Backend().(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// DiskStats returns the device-wide aggregate I/O counters: the sum of
// every stream's per-stream IOStats (metadata I/O is never counted).
func (db *DB) DiskStats() IOStats {
	return fromDisk(db.dev.Stats())
}

// StreamStats returns the per-stream I/O counters for every live stream.
// Each stream's counters cover exactly the block I/O issued through its
// namespaced device view, so the values sum to DiskStats.
func (db *DB) StreamStats() map[string]IOStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make(map[string]IOStats, len(db.streams))
	for name, s := range db.streams {
		out[name] = s.DiskStats()
	}
	return out
}

// CacheBlocks returns the number of blocks currently resident in the
// shared cache.
func (db *DB) CacheBlocks() int { return db.dev.CacheBlocks() }

// MaintenanceMode returns the resolved maintenance mode every stream of
// this DB runs under ("sync", "async" or "manual") — the value after
// Config defaulting, so callers never re-derive the resolution rule.
func (db *DB) MaintenanceMode() string { return db.opts.Maintenance }
