package hsq

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/enc"
	"repro/internal/query"
)

// Cold-summary sidecars let glob and group-by queries answer over evicted
// streams without hydrating them: whenever a stream's durable state is
// exactly its installed partitions (the state eviction requires — empty
// observe buffer, no sealed backlog), the DB writes the partition
// summaries with their step ranges to a SUMMARY.bin metadata file in the
// stream's namespace. A scoped summary for a cold stream is then one
// metadata read — metadata I/O is never counted in IOStats, so a merged
// query over a thousand cold sensors costs zero RandReads.
//
// Freshness is structural, not best-effort: the sidecar embeds the step
// count and the per-partition (count, step-range) layout, and a cold read
// first cross-checks them against the stream's own committed
// MANIFEST.json. Any divergence — a crash after EndSteps that outran the
// last checkpoint, a merge that reshaped partitions, a drop/re-create —
// fails the check and the query falls back to a one-time hydration, after
// which the next eviction or checkpoint rewrites the sidecar. A stream
// whose namespace has no manifest at all has no durable data (registered
// but never sealed), and answers empty without hydrating.

// sidecarName is the cold-summary metadata file inside a stream's
// namespace, next to its MANIFEST.json.
const sidecarName = "SUMMARY.bin"

// sidecarVersion is the SUMMARY.bin encoding version byte.
const sidecarVersion = 1

// sidecarPart is one installed partition's summary in the sidecar: the
// portable (count, values) pair plus the covered step range, which scoped
// selection needs and core.PartSummary deliberately omits.
type sidecarPart struct {
	Count              int64
	StartStep, EndStep int
	Values             []int64
}

// sidecarPath returns the sidecar's key on the DB's root device view.
func sidecarPath(stream string) string {
	return streamNamespacePrefix + "/" + stream + "/" + sidecarName
}

// streamManifestPath returns a stream's store-manifest key on the root view.
func streamManifestPath(stream string) string {
	return streamNamespacePrefix + "/" + stream + "/" + manifestName
}

// encodeSidecar serializes the sidecar:
//
//	version u8 | uvarint steps | uvarint total | uvarint len(parts)
//	| per part: uvarint count | uvarint start | uvarint end
//	            | uvarint len | delta values
func encodeSidecar(parts []sidecarPart, steps int, total int64) []byte {
	buf := []byte{sidecarVersion}
	buf = binary.AppendUvarint(buf, uint64(steps))
	buf = binary.AppendUvarint(buf, uint64(total))
	buf = binary.AppendUvarint(buf, uint64(len(parts)))
	for _, p := range parts {
		buf = binary.AppendUvarint(buf, uint64(p.Count))
		buf = binary.AppendUvarint(buf, uint64(p.StartStep))
		buf = binary.AppendUvarint(buf, uint64(p.EndStep))
		buf = binary.AppendUvarint(buf, uint64(len(p.Values)))
		buf = enc.AppendDelta(buf, p.Values)
	}
	return buf
}

// decodeSidecar parses a SUMMARY.bin payload, rejecting truncation,
// trailing bytes and counts beyond the input size.
func decodeSidecar(data []byte) (parts []sidecarPart, steps int, total int64, err error) {
	d := sidecarDecoder{buf: data}
	if v := d.byte(); d.err == nil && v != sidecarVersion {
		return nil, 0, 0, fmt.Errorf("hsq: cold summary version %d (want %d)", v, sidecarVersion)
	}
	steps = int(d.uvarint())
	total = int64(d.uvarint())
	nparts := d.uvarint()
	if d.err == nil && nparts > uint64(len(data)) {
		return nil, 0, 0, fmt.Errorf("hsq: cold summary declares %d partitions beyond input", nparts)
	}
	for i := uint64(0); i < nparts && d.err == nil; i++ {
		p := sidecarPart{
			Count:     int64(d.uvarint()),
			StartStep: int(d.uvarint()),
			EndStep:   int(d.uvarint()),
		}
		p.Values = d.values(len(data))
		parts = append(parts, p)
	}
	if d.err != nil {
		return nil, 0, 0, fmt.Errorf("hsq: decode cold summary: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, 0, 0, fmt.Errorf("hsq: decode cold summary: %d trailing bytes", len(d.buf))
	}
	return parts, steps, total, nil
}

// sidecarDecoder is the error-latching cursor for the sidecar encoding.
type sidecarDecoder struct {
	buf []byte
	err error
}

func (d *sidecarDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *sidecarDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail(fmt.Errorf("truncated"))
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *sidecarDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail(fmt.Errorf("bad uvarint"))
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *sidecarDecoder) values(inputLen int) []int64 {
	n := d.uvarint()
	if d.err == nil && n > uint64(inputLen) {
		d.fail(fmt.Errorf("declared count %d exceeds input", n))
	}
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	rest, err := enc.DecodeDelta(vs, d.buf)
	if err != nil {
		d.fail(err)
		return nil
	}
	d.buf = rest
	return vs
}

// writeSidecar persists the stream's cold summary. Metadata write — atomic
// on the backend, uncounted in I/O stats; durability rides the next
// device sync like the manifests it mirrors.
func (db *DB) writeSidecar(stream string, parts []sidecarPart, steps int, total int64) error {
	return db.dev.WriteMeta(sidecarPath(stream), encodeSidecar(parts, steps, total))
}

// dropSidecar best-effort removes a stream's sidecar: used when the
// stream's durable state stops being representable (pending work at
// checkpoint) or the stream is dropped. A leftover sidecar is safe — the
// manifest cross-check rejects it — this just avoids pointless fallbacks.
func (db *DB) dropSidecar(stream string) {
	if db.dev.Exists(sidecarPath(stream)) {
		db.dev.Remove(sidecarPath(stream)) //nolint:errcheck // advisory cleanup
	}
}

// storeManifestView is the slice of a stream's MANIFEST.json the sidecar
// cross-check needs: covered steps, pending backlog, and the partition
// layout.
type storeManifestView struct {
	Steps int `json:"steps"`
	Parts []struct {
		Count     int64 `json:"count"`
		StartStep int   `json:"start_step"`
		EndStep   int   `json:"end_step"`
	} `json:"partitions"`
	Pending []json.RawMessage `json:"pending"`
}

// readColdSummary answers a scoped summary for a non-hydrated stream from
// its sidecar. ok=false means the sidecar cannot answer (missing or stale)
// and the caller must fall back to hydration; err is a real query error
// (bad scope) that hydrating would not fix — the validated sidecar is
// exactly the stream's durable state.
func (db *DB) readColdSummary(stream string, sc query.Scope) (sum *core.ShardSummary, ok bool, err error) {
	eps1, eps2 := db.opts.Epsilon/2, db.opts.Epsilon/4
	if !db.dev.Exists(streamManifestPath(stream)) {
		// Registered but never sealed: no durable data by the durability
		// contract, so the scoped answer is empty (any AsOf/window scope
		// over zero steps would also error on a hydrated engine — report
		// the same emptiness instead, since a fresh engine has 0 steps).
		if sc.AsOf > 0 || sc.Window > 0 || sc.Back > 0 {
			return nil, false, fmt.Errorf("hsq: stream %q has no sealed steps for scope %+v", stream, sc)
		}
		return &core.ShardSummary{Eps1: eps1, Eps2: eps2}, true, nil
	}
	raw, err := db.dev.ReadMeta(sidecarPath(stream))
	if err != nil {
		return nil, false, nil // missing sidecar: hydrate
	}
	parts, steps, total, err := decodeSidecar(raw)
	if err != nil {
		return nil, false, nil // corrupt sidecar: hydrate, next seal rewrites it
	}
	var partsTotal int64
	for _, p := range parts {
		partsTotal += p.Count
	}
	if partsTotal != total {
		return nil, false, nil // internal inconsistency: treat as corrupt
	}
	mraw, err := db.dev.ReadMeta(streamManifestPath(stream))
	if err != nil {
		return nil, false, nil
	}
	var m storeManifestView
	if err := json.Unmarshal(mraw, &m); err != nil || !sidecarMatches(parts, steps, m) {
		return nil, false, nil // stale vs the committed manifest: hydrate
	}
	sum, err = scopedFromParts(parts, steps, eps1, eps2, sc)
	if err != nil {
		return nil, false, err
	}
	return sum, true, nil
}

// sidecarMatches cross-checks the sidecar against the stream's committed
// store manifest: same step count, no pending sealed batches (the sidecar
// format represents installed partitions only), and the identical
// partition layout — counts and step ranges, compared chronologically so
// manifest level-ordering doesn't matter. Background merges change the
// layout without changing steps or totals, so the layout itself must be
// part of the check.
func sidecarMatches(parts []sidecarPart, steps int, m storeManifestView) bool {
	if m.Steps != steps || len(m.Pending) != 0 || len(m.Parts) != len(parts) {
		return false
	}
	mp := make([]struct {
		count      int64
		start, end int
	}, len(m.Parts))
	for i, p := range m.Parts {
		mp[i] = struct {
			count      int64
			start, end int
		}{p.Count, p.StartStep, p.EndStep}
	}
	sort.Slice(mp, func(i, j int) bool { return mp[i].start < mp[j].start })
	for i, p := range parts {
		if mp[i].count != p.Count || mp[i].start != p.StartStep || mp[i].end != p.EndStep {
			return false
		}
	}
	return true
}

// scopedFromParts is the cold twin of Engine.ScopedSummary: the same
// step-scope selection over the sidecar's partition list. A cold stream
// has no sealed backlog and no live buffer, so only installed partitions
// participate.
func scopedFromParts(parts []sidecarPart, steps int, eps1, eps2 float64, sc query.Scope) (*core.ShardSummary, error) {
	if sc.Window < 0 || sc.Back < 0 || sc.AsOf < 0 {
		return nil, fmt.Errorf("hsq: invalid scope %+v", sc)
	}
	end := steps
	if sc.AsOf > 0 {
		if sc.AsOf > steps {
			return nil, fmt.Errorf("hsq: as_of_step %d is beyond the newest sealed step %d", sc.AsOf, steps)
		}
		end = sc.AsOf
	}
	if sc.Back > 0 {
		end -= sc.Back
		if end < 0 {
			return nil, fmt.Errorf("hsq: window shifted %d steps back ends before the first step (newest is %d)", sc.Back, steps)
		}
	}
	start := 0
	if sc.Window > 0 {
		start = end - sc.Window
		if start < 0 {
			return nil, fmt.Errorf("hsq: window of %d steps ending at step %d extends before the first step", sc.Window, end)
		}
	}
	sum := &core.ShardSummary{Eps1: eps1, Eps2: eps2}
	for _, p := range parts {
		if p.EndStep <= start || p.StartStep > end {
			continue
		}
		if p.StartStep <= start || p.EndStep > end {
			bounds := []int{0}
			for _, q := range parts {
				bounds = append(bounds, q.EndStep)
			}
			return nil, fmt.Errorf("hsq: step range (%d, %d] does not align with partition boundaries (available: %v)",
				start, end, bounds)
		}
		sum.Parts = append(sum.Parts, core.PartSummary{Count: p.Count, Values: p.Values})
		sum.N += p.Count
	}
	return sum, nil
}

// scopedSummary answers one stream's scoped summary for the query layer:
// hydrated streams from their live engine (one pin, no LRU side effects
// beyond a touch), cold streams from the sealed sidecar without
// hydrating, and only as a last resort — no or stale sidecar — by
// hydrating once, which also queues the stream to have a fresh sidecar
// written at its next eviction or checkpoint.
func (db *DB) scopedSummary(name string, sc query.Scope) (*core.ShardSummary, error) {
	db.mu.Lock()
	ent, dirOK := db.dir[name]
	if db.closed || !dirOK || ent.dropped {
		closed := db.closed
		db.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownStream, name)
	}
	eng, release, err, done := db.tryAcquireLocked(ent)
	db.mu.Unlock()
	if done {
		if err != nil {
			return nil, err
		}
		defer release()
		return eng.ScopedSummary(sc)
	}
	// Cold: try the sidecar — a pure metadata read, never a hydration.
	if sum, ok, err := db.readColdSummary(name, sc); err != nil {
		return nil, err
	} else if ok {
		return sum, nil
	}
	// Fallback: hydrate once (counted in DirectoryStats.Hydrations).
	eng, release, err = db.acquire(ent)
	if err != nil {
		return nil, err
	}
	defer release()
	return eng.ScopedSummary(sc)
}
