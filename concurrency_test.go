package hsq

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/oracle"
)

// TestConcurrentQueriesDuringBackgroundMerge is the snapshot-isolation
// acceptance test: with async maintenance, producers Observe and EndStep
// while readers run accurate Quantile and Rank queries the whole time —
// including while background installs and κ-way merges are in flight — and
// every answer must stay within ε of ground truth.
//
// The stream feeds the ascending sequence 1, 2, 3, ..., so ground truth is
// exact at every instant: with N_before elements observed before a query
// and N_after at its end, the true φ-quantile lies in
// [φ·N_before, φ·N_after] and the engine guarantees rank error ≤ ε·N; the
// assertion brackets the answer accordingly. Run under -race this also
// proves the locking discipline: queries never touch engine state that
// installs mutate.
func TestConcurrentQueriesDuringBackgroundMerge(t *testing.T) {
	const (
		eps     = 0.05
		readers = 2
	)
	steps, batch := 30, 1200
	if testing.Short() {
		steps = 12
	}
	eng, err := New(Config{
		Epsilon: eps, Kappa: 2, // κ=2 cascades merges constantly
		Backend: "mem", BlockSize: 512,
		Maintenance: MaintenanceAsync, MaxPendingSteps: envMaxPending(3), MaintenanceWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck

	var observed atomic.Int64 // elements fed so far (== largest value fed)
	var stop atomic.Bool
	var wg sync.WaitGroup
	var mergesSeen atomic.Bool

	// Readers: accurate quantiles and rank queries, continuously.
	errs := make(chan error, readers*4)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(phi float64) {
			defer wg.Done()
			for !stop.Load() {
				nBefore := observed.Load()
				if nBefore == 0 {
					continue
				}
				v, _, err := eng.Quantile(phi)
				nAfter := observed.Load()
				if err != nil {
					errs <- err
					return
				}
				slack := int64(eps*float64(nAfter)) + 2
				lo := int64(phi*float64(nBefore)) - slack
				hi := int64(phi*float64(nAfter)) + slack
				if v < lo || v > hi {
					t.Errorf("quantile(%g) = %d outside [%d, %d] (N %d→%d)", phi, v, lo, hi, nBefore, nAfter)
					return
				}
				// Rank is the inverse primitive: rank(v) for v = N/2 must be
				// within ε·N of N/2 (values are exactly 1..N).
				target := nAfter / 2
				if target > 0 {
					r, _, err := eng.Rank(target)
					n2 := observed.Load()
					if err != nil {
						errs <- err
						return
					}
					rslack := int64(eps*float64(n2)) + 2
					if r < target-rslack || r > target+rslack {
						t.Errorf("rank(%d) = %d, want within %d (N=%d)", target, r, rslack, n2)
						return
					}
				}
			}
		}(0.25 + 0.5*float64(i)/float64(readers))
	}

	// Track that queries genuinely overlapped an in-flight install/merge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if ms := eng.MaintenanceStats(); ms.Running {
				mergesSeen.Store(true)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Producer: ascending values, one EndStep per batch. Observe latency is
	// bounded by the seal, never by a merge.
	next := int64(1)
	for s := 0; s < steps; s++ {
		for i := 0; i < batch; i++ {
			eng.Observe(next)
			observed.Store(next)
			next++
		}
		if _, err := eng.EndStep(); err != nil {
			t.Fatalf("EndStep %d: %v", s+1, err)
		}
	}
	if err := eng.SyncMaintenance(); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("reader: %v", err)
	}

	if !mergesSeen.Load() {
		t.Log("warning: sampler never caught an install mid-flight (timing-dependent)")
	}
	ms := eng.MaintenanceStats()
	if ms.Installs != steps {
		t.Errorf("Installs = %d, want %d", ms.Installs, steps)
	}
	if ms.Merges == 0 {
		t.Errorf("no background merges ran (κ=2 over %d steps must cascade)", steps)
	}

	// Final cross-check against the exact oracle.
	total := next - 1
	or := oracle.New(int(total))
	for v := int64(1); v <= total; v++ {
		or.Add(v)
	}
	bound := int64(eps*float64(total)) + 1
	for _, phi := range []float64{0.1, 0.5, 0.99} {
		v, _, err := eng.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		target := int64(phi * float64(total))
		if target < 1 {
			target = 1
		}
		if spanErr := or.SpanError(target, v); spanErr > bound {
			t.Errorf("final quantile(%g)=%d rank error %d > %d", phi, v, spanErr, bound)
		}
	}
}

// TestObserveNotBlockedByMerge proves the lock split directly: while a
// background install is wedged (blocking fault hook), Observe and Quantile
// both complete — only EndStep past the backpressure bound waits.
func TestObserveNotBlockedByMerge(t *testing.T) {
	eng, err := New(Config{
		Epsilon: 0.05, Kappa: 2, Backend: "mem", BlockSize: 512,
		Maintenance: MaintenanceAsync, MaxPendingSteps: 8, MaintenanceWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck

	gate := make(chan struct{})
	var gateOff atomic.Bool
	eng.dev.SetFault(func(op disk.Op, name string, block int64) error {
		// Wedge partition writes (the background install); seals and query
		// reads pass through untouched.
		if op == disk.OpSeqWrite && strings.HasPrefix(name, "part-") && !gateOff.Load() {
			<-gate
		}
		return nil
	})

	for i := int64(1); i <= 500; i++ {
		eng.Observe(i)
	}
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err) // install now wedged behind the gate
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(501); i <= 1000; i++ {
			eng.Observe(i)
		}
		if _, _, err := eng.Quantile(0.5); err != nil {
			t.Errorf("query during wedged merge: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Observe/Quantile blocked behind a wedged background install")
	}
	gateOff.Store(true)
	close(gate)
	if err := eng.SyncMaintenance(); err != nil {
		t.Fatal(err)
	}
	eng.dev.SetFault(nil)
}

// TestDropStreamWaitsForQueries pins the teardown barrier: DropStream (and
// Destroy generally) must wait out queries that pinned a version before
// deleting partition files, so an in-flight disk search never reads a
// removed file.
func TestDropStreamWaitsForQueries(t *testing.T) {
	db, err := Open(Options{Epsilon: 0.05, Kappa: 2, Backend: "mem", BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	st, err := db.Stream("victim")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for i := int64(0); i < 3000; i++ {
			st.Observe(i*4 + int64(s))
		}
		if _, err := st.EndStep(); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	qErrs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				_, _, err := st.Quantile(0.5)
				if err != nil {
					// ErrClosed after the drop is the contract; an I/O error
					// ("file removed under me") is the bug.
					if !errors.Is(err, ErrClosed) {
						qErrs <- err
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let queries get in flight
	if err := db.DropStream("victim"); err != nil {
		t.Fatalf("DropStream: %v", err)
	}
	wg.Wait()
	close(qErrs)
	for err := range qErrs {
		t.Errorf("query raced the drop: %v", err)
	}
}
