package hsq

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/oracle"
	"repro/internal/partition"
	"repro/internal/workload"
)

// envMaxPending lets CI force a backpressure depth on every
// maintenance-mode test (HSQ_MAX_PENDING_STEPS=1 runs the whole suite under
// constant backpressure; a large value exercises deep pending queues).
func envMaxPending(def int) int {
	if v := os.Getenv("HSQ_MAX_PENDING_STEPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func maintConfig(mode string, maxPending int) Config {
	return Config{
		Epsilon: 0.05, Kappa: 3, Backend: "mem", BlockSize: 1024,
		Maintenance: mode, MaxPendingSteps: maxPending,
	}
}

// feedSteps drives steps batches of size batch through the engine,
// returning every observed element.
func feedSteps(t *testing.T, eng *Engine, gen workload.Generator, steps, batch int) []int64 {
	t.Helper()
	var all []int64
	for s := 0; s < steps; s++ {
		vals := workload.Fill(gen, batch)
		all = append(all, vals...)
		eng.ObserveSlice(vals)
		if _, err := eng.EndStep(); err != nil {
			t.Fatalf("EndStep %d: %v", s+1, err)
		}
	}
	return all
}

// oracleQuerier is the slice of the Engine/Stream surface
// checkAgainstOracle needs, so the helper works on both.
type oracleQuerier interface {
	Epsilon() float64
	Quantile(phi float64) (int64, QueryStats, error)
}

func checkAgainstOracle(t *testing.T, eng oracleQuerier, all []int64, label string) {
	t.Helper()
	or := oracle.New(len(all))
	or.Add(all...)
	n := int64(len(all))
	bound := int64(eng.Epsilon()*float64(n)) + 1
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
		v, _, err := eng.Quantile(phi)
		if err != nil {
			t.Fatalf("%s: quantile(%g): %v", label, phi, err)
		}
		target := int64(phi * float64(n))
		if target < 1 {
			target = 1
		}
		if spanErr := or.SpanError(target, v); spanErr > bound {
			t.Errorf("%s: quantile(%g)=%d rank error %d > ε·N=%d", label, phi, v, spanErr, bound)
		}
	}
}

// TestMaintenanceModesEquivalent feeds the same workload through all three
// maintenance modes and requires identical step counts, identical histories
// and oracle-accurate quantiles — maintenance scheduling must never change
// what queries see.
func TestMaintenanceModesEquivalent(t *testing.T) {
	for _, mode := range []string{MaintenanceSync, MaintenanceAsync, MaintenanceManual} {
		t.Run(mode, func(t *testing.T) {
			eng, err := New(maintConfig(mode, envMaxPending(3)))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close() //nolint:errcheck
			all := feedSteps(t, eng, workload.NewUniform(42), 12, 700)
			// Quantiles must be accurate BEFORE draining: sealed steps are
			// covered by their frozen summaries.
			checkAgainstOracle(t, eng, all, "pre-drain")
			if err := eng.SyncMaintenance(); err != nil {
				t.Fatalf("SyncMaintenance: %v", err)
			}
			if got := eng.Steps(); got != 12 {
				t.Errorf("Steps = %d, want 12", got)
			}
			if got := eng.HistCount(); got != int64(len(all)) {
				t.Errorf("HistCount = %d, want %d", got, len(all))
			}
			ms := eng.MaintenanceStats()
			if ms.PendingSteps != 0 || ms.PendingElements != 0 {
				t.Errorf("after SyncMaintenance: pending = %d steps / %d elements", ms.PendingSteps, ms.PendingElements)
			}
			if mode != MaintenanceSync && ms.Installs != 12 {
				t.Errorf("Installs = %d, want 12", ms.Installs)
			}
			if mode != MaintenanceSync && ms.MaintIO.Total() == 0 {
				t.Error("deferred mode reported zero maintenance I/O")
			}
			checkAgainstOracle(t, eng, all, "post-drain")
		})
	}
}

// TestManualMaintenanceDefersInstalls pins the deferred-phase contract:
// EndStep in manual mode seals without installing (no new partitions, the
// backlog grows, queries still cover everything), and SyncMaintenance folds
// the backlog into partitions.
func TestManualMaintenanceDefersInstalls(t *testing.T) {
	eng, err := New(maintConfig(MaintenanceManual, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck
	all := feedSteps(t, eng, workload.NewNormal(7), 5, 400)
	if got := eng.PartitionCount(); got != 0 {
		t.Errorf("PartitionCount = %d before maintenance, want 0", got)
	}
	ms := eng.MaintenanceStats()
	if ms.PendingSteps != 5 || ms.PendingElements != 2000 {
		t.Errorf("pending = %d steps / %d elements, want 5 / 2000", ms.PendingSteps, ms.PendingElements)
	}
	if got := eng.HistCount(); got != 2000 {
		t.Errorf("HistCount = %d, want 2000 (sealed steps count as history)", got)
	}
	if got := eng.Steps(); got != 5 {
		t.Errorf("Steps = %d, want 5", got)
	}
	checkAgainstOracle(t, eng, all, "sealed-only")

	if err := eng.SyncMaintenance(); err != nil {
		t.Fatal(err)
	}
	if got := eng.PartitionCount(); got == 0 {
		t.Error("PartitionCount still 0 after SyncMaintenance")
	}
	if got := eng.MaintenanceStats().PendingSteps; got != 0 {
		t.Errorf("pending = %d after SyncMaintenance", got)
	}
	checkAgainstOracle(t, eng, all, "installed")
}

// TestAsyncBackpressureBlocks wedges the background install with a blocking
// fault hook and proves that (a) EndStep blocks once MaxPendingSteps seals
// are pending, (b) EndStepCtx aborts the wait on cancellation, and (c) the
// wait resolves as soon as maintenance progresses.
func TestAsyncBackpressureBlocks(t *testing.T) {
	eng, err := New(Config{
		Epsilon: 0.05, Kappa: 3, Backend: "mem", BlockSize: 1024,
		Maintenance: MaintenanceAsync, MaxPendingSteps: 1, MaintenanceWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck

	gate := make(chan struct{})
	var released atomic.Bool
	eng.dev.SetFault(func(op disk.Op, name string, block int64) error {
		// Block the first partition write (the background install) until the
		// gate opens. Seals write batch-raw files, which pass through.
		if op == disk.OpSeqWrite && strings.HasPrefix(name, "part-") && !released.Load() {
			<-gate
		}
		return nil
	})

	gen := workload.NewUniform(3)
	eng.ObserveSlice(workload.Fill(gen, 300))
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err) // seals; install blocks in the background
	}

	// Second EndStep must hit backpressure (1 pending >= MaxPendingSteps=1).
	eng.ObserveSlice(workload.Fill(gen, 300))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := eng.EndStepCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EndStepCtx under backpressure: err = %v, want deadline exceeded", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := eng.EndStep()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("EndStep returned while backpressured: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	released.Store(true)
	close(gate) // let the install finish
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("EndStep after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("EndStep still blocked after maintenance progressed")
	}
	eng.dev.SetFault(nil)
	if err := eng.SyncMaintenance(); err != nil {
		t.Fatal(err)
	}
	ms := eng.MaintenanceStats()
	if ms.BackpressureWaits == 0 {
		t.Error("BackpressureWaits = 0, want > 0")
	}
	if ms.Installs != 2 {
		t.Errorf("Installs = %d, want 2", ms.Installs)
	}
}

// TestMaintenanceStatsAndWindows covers the windowed-query composition with
// a backlog: sealed steps are the newest windows; partition-aligned windows
// shift by the backlog size.
func TestMaintenanceWindowsWithBacklog(t *testing.T) {
	eng, err := New(maintConfig(MaintenanceManual, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close() //nolint:errcheck
	gen := workload.NewUniform(5)
	// Two installed steps...
	feedSteps(t, eng, gen, 2, 300)
	if err := eng.SyncMaintenance(); err != nil {
		t.Fatal(err)
	}
	installedWins := eng.AvailableWindows()
	// ...then two sealed-but-uninstalled steps.
	feedSteps(t, eng, gen, 2, 300)
	wins := eng.AvailableWindows()
	want := map[int]bool{1: true, 2: true}
	for _, w := range installedWins {
		want[w+2] = true
	}
	for _, w := range wins {
		if !want[w] {
			t.Errorf("AvailableWindows = %v: window %d unexpected (installed wins %v + 2 sealed)", wins, w, installedWins)
		}
	}
	for _, w := range wins {
		v, _, err := eng.WindowQuantile(0.5, w)
		if err != nil {
			t.Fatalf("WindowQuantile(0.5, %d): %v", w, err)
		}
		if v == 0 {
			t.Errorf("WindowQuantile(0.5, %d) = 0", w)
		}
		if _, err := eng.WindowQuantileQuick(0.5, w); err != nil {
			t.Fatalf("WindowQuantileQuick(0.5, %d): %v", w, err)
		}
	}
}

// TestDBWaitIdleAndSchedulerStats drives several async streams of one DB
// and checks the DB-wide scheduler accounting plus the WaitIdle barrier.
func TestDBWaitIdleAndSchedulerStats(t *testing.T) {
	db, err := Open(Options{
		Epsilon: 0.05, Kappa: 3, Backend: "mem", BlockSize: 1024,
		Maintenance: MaintenanceAsync, MaxPendingSteps: envMaxPending(4), MaintenanceWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	gen := workload.NewUniform(9)
	data := make(map[string][]int64)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("s%d", i)
		st, err := db.Stream(name)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 4; k++ {
			vals := workload.Fill(gen, 500)
			data[name] = append(data[name], vals...)
			st.ObserveSlice(vals)
			if _, err := st.EndStep(); err != nil {
				t.Fatalf("stream %s EndStep: %v", name, err)
			}
		}
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	ss := db.SchedulerStats()
	if ss.Workers != 2 {
		t.Errorf("Workers = %d, want 2", ss.Workers)
	}
	if ss.PendingSteps != 0 || ss.MergeDebt != 0 {
		t.Errorf("after WaitIdle: pending %d steps / debt %d", ss.PendingSteps, ss.MergeDebt)
	}
	if ss.Installs != 12 {
		t.Errorf("Installs = %d, want 12", ss.Installs)
	}
	if ss.MaintIO.Total() == 0 {
		t.Error("device-wide MaintIO is zero after 12 background installs")
	}
	for name, all := range data {
		st, ok := db.Lookup(name)
		if !ok {
			t.Fatalf("stream %s missing", name)
		}
		if got := st.HistCount(); got != int64(len(all)) {
			t.Errorf("stream %s: HistCount = %d, want %d", name, got, len(all))
		}
		checkAgainstOracle(t, st, all, name)
	}
}

// TestAsyncRestartRecoversSealedSteps crashes (well, closes the backend
// abruptly by just reopening over the same memory device is impossible —
// use the file backend) with a sealed backlog and requires the reopened
// engine to re-install every sealed step from its spill.
func TestManualRestartRecoversSealedSteps(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Epsilon: 0.05, Kappa: 3, Dir: dir, BlockSize: 1024, Maintenance: MaintenanceManual}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := feedSteps(t, eng, workload.NewUniform(11), 4, 350)
	// Simulate an unclean shutdown: no Close, no SyncMaintenance — the
	// sealed steps exist only as spills + manifest pending entries.
	if got := eng.PartitionCount(); got != 0 {
		t.Fatalf("PartitionCount = %d, want 0 (nothing installed)", got)
	}

	re, err := OpenEngine(cfg)
	if err != nil {
		t.Fatalf("reopen with sealed backlog: %v", err)
	}
	defer re.Close() //nolint:errcheck
	if got := re.Steps(); got != 4 {
		t.Errorf("recovered Steps = %d, want 4", got)
	}
	if got := re.HistCount(); got != int64(len(all)) {
		t.Errorf("recovered HistCount = %d, want %d", got, len(all))
	}
	if got := re.PartitionCount(); got == 0 {
		t.Error("recovered engine installed no partitions")
	}
	if got := re.MaintenanceStats().PendingSteps; got != 0 {
		t.Errorf("recovered pending = %d, want 0 (reopen drains)", got)
	}
	checkAgainstOracle(t, re, all, "recovered")
}

// TestValidationSingleSource asserts the satellite contract: the public
// config layer and the partition layer reject the same Epsilon/Kappa
// inputs, because both route through partition's validators.
func TestValidationSingleSource(t *testing.T) {
	dev, err := disk.NewManagerOn(disk.NewMemBackend(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{-0.5, 0, 1, 1.7} {
		_, engErr := New(Config{Epsilon: eps, Backend: "mem"})
		_, storeErr := partition.NewStore(dev, partition.Config{Kappa: 10, Eps1: eps})
		if (engErr == nil) != (storeErr == nil) {
			t.Errorf("eps=%g: engine err=%v, store err=%v — layers disagree", eps, engErr, storeErr)
		}
		if engErr == nil {
			t.Errorf("eps=%g: accepted", eps)
		}
	}
	for _, kappa := range []int{-1, 1} {
		_, engErr := New(Config{Epsilon: 0.1, Kappa: kappa, Backend: "mem"})
		_, storeErr := partition.NewStore(dev, partition.Config{Kappa: kappa, Eps1: 0.05})
		if (engErr == nil) != (storeErr == nil) {
			t.Errorf("kappa=%d: engine err=%v, store err=%v — layers disagree", kappa, engErr, storeErr)
		}
		if engErr == nil {
			t.Errorf("kappa=%d: accepted", kappa)
		}
	}
	// Kappa 0 means "default" at the engine layer only.
	if _, err := New(Config{Epsilon: 0.1, Kappa: 0, Backend: "mem"}); err != nil {
		t.Errorf("kappa=0 (default): %v", err)
	}
	if _, err := partition.NewStore(dev, partition.Config{Kappa: 0, Eps1: 0.05}); err == nil {
		t.Error("store kappa=0: accepted")
	}
	// Unknown maintenance mode and negative backpressure are rejected.
	if _, err := New(Config{Epsilon: 0.1, Backend: "mem", Maintenance: "turbo"}); err == nil {
		t.Error("Maintenance=turbo: accepted")
	}
	if _, err := New(Config{Epsilon: 0.1, Backend: "mem", MaxPendingSteps: -1}); err == nil {
		t.Error("MaxPendingSteps=-1: accepted")
	}
}
