package hsq_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/workload"
)

// memDB opens a mem-backed DB with a small block size so tests exercise
// multi-block paths.
func memDB(t testing.TB, cacheBlocks int) *hsq.DB {
	t.Helper()
	db, err := hsq.Open(hsq.Options{
		Epsilon:     0.02,
		Kappa:       4,
		Backend:     "mem",
		BlockSize:   1024, // 128 elements per block
		CacheBlocks: cacheBlocks,
		NoSpill:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// loadStream feeds steps batches of batch elements into st from a seeded
// generator.
func loadStream(t testing.TB, st *hsq.Stream, seed int64, steps, batch int) {
	t.Helper()
	gen := workload.NewNormal(seed)
	for s := 0; s < steps; s++ {
		st.ObserveSlice(workload.Fill(gen, batch))
		if _, err := st.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDBStreamsIndependent(t *testing.T) {
	db := memDB(t, 0)
	lat, err := db.Stream("api.latency")
	if err != nil {
		t.Fatal(err)
	}
	size, err := db.Stream("api.size")
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint ranges: latency 1..1000, size 100001..101000.
	for i := int64(1); i <= 1000; i++ {
		lat.Observe(i)
		size.Observe(100000 + i)
	}
	if _, err := lat.EndStep(); err != nil {
		t.Fatal(err)
	}
	if _, err := size.EndStep(); err != nil {
		t.Fatal(err)
	}
	if v, _, err := lat.Quantile(0.5); err != nil || v != 500 {
		t.Errorf("latency median = %d, %v", v, err)
	}
	if v, _, err := size.Quantile(0.5); err != nil || v != 100500 {
		t.Errorf("size median = %d, %v", v, err)
	}
	// Same *Stream on repeat lookup; directory sorted.
	again, err := db.Stream("api.latency")
	if err != nil || again != lat {
		t.Errorf("Stream returned a different handle: %v", err)
	}
	if got := db.Streams(); len(got) != 2 || got[0] != "api.latency" || got[1] != "api.size" {
		t.Errorf("Streams = %v", got)
	}
	// Invalid names rejected.
	for _, bad := range []string{"", "a/b", "..", "sp ace"} {
		if _, err := db.Stream(bad); err == nil {
			t.Errorf("Stream(%q): want error", bad)
		}
	}
}

// TestDBConcurrentStreams hammers four streams with parallel
// Observe/EndStep/Quantile; run under -race this validates the concurrent
// multi-stream surface.
func TestDBConcurrentStreams(t *testing.T) {
	db := memDB(t, 128)
	const streams = 4
	var wg sync.WaitGroup
	errc := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := db.Stream(fmt.Sprintf("s%d", i))
			if err != nil {
				errc <- err
				return
			}
			gen := workload.NewNormal(int64(i + 1))
			for step := 0; step < 5; step++ {
				st.ObserveSlice(workload.Fill(gen, 2000))
				if _, err := st.EndStep(); err != nil {
					errc <- err
					return
				}
				for _, phi := range []float64{0.1, 0.5, 0.9} {
					if _, _, err := st.Quantile(phi); err != nil {
						errc <- err
						return
					}
					if _, err := st.QuantileQuick(phi); err != nil {
						errc <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := len(db.Streams()); got != streams {
		t.Errorf("streams = %d, want %d", got, streams)
	}
	// Aggregate invariant still holds after concurrent traffic.
	var sum hsq.IOStats
	for _, io := range db.StreamStats() {
		sum.SeqReads += io.SeqReads
		sum.SeqWrites += io.SeqWrites
		sum.RandReads += io.RandReads
		sum.CacheHits += io.CacheHits
		sum.CacheMisses += io.CacheMisses
		sum.SkippedBlocks += io.SkippedBlocks
	}
	if agg := db.DiskStats(); sum != agg {
		t.Errorf("per-stream sum %+v != aggregate %+v", sum, agg)
	}
}

func TestDBCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	opts := hsq.Options{Epsilon: 0.05, Kappa: 3, Dir: dir, BlockSize: 1024}
	db, err := hsq.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.Stream("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Stream("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 600; i++ {
		a.Observe(i)
		b.Observe(-i)
	}
	if _, err := a.EndStep(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // Close checkpoints every stream
		t.Fatal(err)
	}
	// Closed DB refuses further work.
	if _, err := db.Stream("c"); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("Stream on closed DB: %v", err)
	}
	if _, _, err := a.Quantile(0.5); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("Quantile on closed stream: %v", err)
	}

	re, err := hsq.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Streams(); len(got) != 2 {
		t.Fatalf("reopened streams = %v", got)
	}
	ra, err := re.Stream("a")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := re.Stream("b")
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := ra.Quantile(0.5); err != nil || v != 300 {
		t.Errorf("reopened a median = %d, %v", v, err)
	}
	if v, _, err := rb.Quantile(0.5); err != nil || v != -301 {
		t.Errorf("reopened b median = %d, %v", v, err)
	}
	// DropStream removes state; restart no longer sees it.
	if err := re.DropStream("b"); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := hsq.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.Streams(); len(got) != 1 || got[0] != "a" {
		t.Errorf("streams after drop+restart = %v", got)
	}
}

// TestOpenRejectsLegacyLayout: a root-level engine checkpoint without a DB
// manifest must not be silently shadowed by an empty DB.
func TestOpenRejectsLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	eng, err := hsq.New(hsq.Config{Epsilon: 0.05, Kappa: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(1)
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := hsq.Open(hsq.Options{Epsilon: 0.05, Kappa: 3, Dir: dir}); err == nil {
		t.Fatal("Open over a legacy single-stream warehouse: want error")
	}
	// The legacy engine still resumes fine.
	re, err := hsq.OpenEngine(hsq.Config{Epsilon: 0.05, Kappa: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}

func TestEngineClose(t *testing.T) {
	dir := t.TempDir()
	cfg := hsq.Config{Epsilon: 0.05, Kappa: 3, Dir: dir, BlockSize: 1024}
	eng, err := hsq.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 500; i++ {
		eng.Observe(i)
	}
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := eng.EndStep(); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("EndStep after Close: %v", err)
	}
	if _, _, err := eng.Quantile(0.5); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("Quantile after Close: %v", err)
	}
	if err := eng.Checkpoint(); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("Checkpoint after Close: %v", err)
	}
	// Observe is a documented no-op on a closed engine; ObserveCtx reports.
	eng.Observe(42)
	if got := eng.StreamCount(); got != 0 {
		t.Errorf("Observe after Close buffered %d elements", got)
	}
	if err := eng.ObserveCtx(context.Background(), 42); !errors.Is(err, hsq.ErrClosed) {
		t.Errorf("ObserveCtx after Close: %v", err)
	}
	// Close checkpointed: OpenEngine resumes.
	re, err := hsq.OpenEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _, err := re.Quantile(0.5); err != nil || v != 250 {
		t.Errorf("resumed median = %d, %v", v, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesOptsBudget(t *testing.T) {
	// Memoization off: the budgeted re-query must repeat the disk search
	// for the budget to bite.
	eng, err := hsq.New(hsq.Config{
		Epsilon: 0.02, Kappa: 4, Backend: "mem", BlockSize: 1024, NoSpill: true,
		ProbeMemoEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewNormal(7)
	for s := 0; s < 6; s++ {
		eng.ObserveSlice(workload.Fill(gen, 5000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	// Keep a live stream so accurate queries must do real bisection work.
	eng.ObserveSlice(workload.Fill(gen, 5000))

	phis := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	_, free, err := eng.QuantilesOpts(phis, hsq.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Truncated {
		t.Fatal("unbudgeted batch reported Truncated")
	}
	if free.RandReads == 0 {
		t.Skip("no random reads without budget; nothing to constrain")
	}
	budget := free.RandReads / 2
	if budget == 0 {
		budget = 1
	}
	vals, qs, err := eng.QuantilesOpts(phis, hsq.QueryOpts{MaxReads: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(phis) {
		t.Fatalf("got %d values", len(vals))
	}
	if !qs.Truncated {
		t.Errorf("half budget: want Truncated (reads=%d budget=%d)", qs.RandReads, budget)
	}
	if qs.RandReads > budget {
		// The last accurate query may overshoot by at most one probe's
		// block reads; a whole extra query's worth means the budget leaked.
		if qs.RandReads > budget+free.RandReads/len(phis) {
			t.Errorf("budget %d but spent %d reads", budget, qs.RandReads)
		}
	}
	// Budgeted answers still honor the quick-query error bound ~1.5·ε·N.
	n := float64(eng.TotalCount())
	for i, phi := range phis {
		r, _, err := eng.Rank(vals[i])
		if err != nil {
			t.Fatal(err)
		}
		if diff := float64(r) - phi*n; diff > 2.5*0.02*n || diff < -2.5*0.02*n {
			t.Errorf("phi=%g: rank off by %.0f (n=%.0f)", phi, diff, n)
		}
	}
}

func TestQuantileCtxCancel(t *testing.T) {
	eng, err := hsq.New(hsq.Config{
		Epsilon: 0.02, Kappa: 4, Backend: "mem", BlockSize: 1024, NoSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewNormal(11)
	eng.ObserveSlice(workload.Fill(gen, 5000))
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.QuantileCtx(ctx, 0.5); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled QuantileCtx: %v", err)
	}
	if err := eng.ObserveCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ObserveCtx: %v", err)
	}
	if _, err := eng.EndStepCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled EndStepCtx: %v", err)
	}
	// A live context works.
	if _, _, err := eng.QuantileCtx(context.Background(), 0.5); err != nil {
		t.Errorf("live QuantileCtx: %v", err)
	}
}
