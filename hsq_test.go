package hsq

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/oracle"
	"repro/internal/workload"
)

func newEngine(t *testing.T, eps float64, kappa int) *Engine {
	t.Helper()
	eng, err := New(Config{
		Epsilon:   eps,
		Kappa:     kappa,
		Dir:       t.TempDir(),
		BlockSize: 1024, // 128 elements per block: exercises multi-block paths at test scale
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Epsilon: 0, Dir: t.TempDir()}); err == nil {
		t.Error("eps=0: want error")
	}
	if _, err := New(Config{Epsilon: 0.1}); err == nil {
		t.Error("no dir: want error")
	}
	if _, err := New(Config{Epsilon: 0.1, Kappa: 1, Dir: t.TempDir()}); err == nil {
		t.Error("kappa=1: want error")
	}
	if _, err := New(Config{Epsilon: 1.2, Dir: t.TempDir()}); err == nil {
		t.Error("eps>1: want error")
	}
}

func TestEmptyEngine(t *testing.T) {
	eng := newEngine(t, 0.1, 3)
	if _, _, err := eng.Quantile(0.5); err == nil {
		t.Error("query on empty engine: want error")
	}
	if _, err := eng.QuantileQuick(0.5); err == nil {
		t.Error("quick query on empty engine: want error")
	}
	us, err := eng.EndStep()
	if err != nil || us.BatchSize != 0 {
		t.Errorf("EndStep on empty stream: %+v, %v", us, err)
	}
}

func TestPhiValidation(t *testing.T) {
	eng := newEngine(t, 0.1, 3)
	eng.Observe(1)
	for _, phi := range []float64{0, -0.5, 1.1} {
		if _, _, err := eng.Quantile(phi); err == nil {
			t.Errorf("phi=%g: want error", phi)
		}
		if _, err := eng.QuantileQuick(phi); err == nil {
			t.Errorf("quick phi=%g: want error", phi)
		}
	}
}

// TestEndToEndAccuracy is the headline integration test: stream 30 time
// steps of data through the engine, querying after every few steps, and
// check the Theorem 2 guarantee |rank(e) - r| ≤ ~1.5·ε·m against an exact
// oracle (the theory constant is 1.25 for our SS rounding; see
// internal/core).
func TestEndToEndAccuracy(t *testing.T) {
	const (
		eps       = 0.05
		steps     = 30
		batchSize = 2000
		streamMid = 1200
	)
	for _, wl := range []string{"uniform", "normal", "wikipedia", "nettrace"} {
		t.Run(wl, func(t *testing.T) {
			gen, err := workload.ByName(wl, 1)
			if err != nil {
				t.Fatal(err)
			}
			eng := newEngine(t, eps, 3)
			orc := oracle.New(steps * batchSize)
			for step := 0; step < steps; step++ {
				batch := workload.Fill(gen, batchSize)
				eng.ObserveSlice(batch)
				orc.Add(batch...)
				if step%5 == 4 {
					// Query mid-stream: part of the batch is "streaming".
					checkAccuracy(t, eng, orc, eps)
				}
				if _, err := eng.EndStep(); err != nil {
					t.Fatal(err)
				}
			}
			// Query with a fresh partial stream on top of full history.
			batch := workload.Fill(gen, streamMid)
			eng.ObserveSlice(batch)
			orc.Add(batch...)
			checkAccuracy(t, eng, orc, eps)

			if eng.HistCount() != int64(steps*batchSize) {
				t.Errorf("HistCount = %d", eng.HistCount())
			}
			if eng.StreamCount() != streamMid {
				t.Errorf("StreamCount = %d", eng.StreamCount())
			}
			if eng.TotalCount() != orc.Count() {
				t.Errorf("TotalCount = %d, oracle %d", eng.TotalCount(), orc.Count())
			}
		})
	}
}

func checkAccuracy(t *testing.T, eng *Engine, orc *oracle.Oracle, eps float64) {
	t.Helper()
	m := float64(eng.StreamCount())
	n := float64(eng.TotalCount())
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		r := int64(math.Ceil(phi * n))
		v, qs, err := eng.Quantile(phi)
		if err != nil {
			t.Fatalf("Quantile(%g): %v", phi, err)
		}
		// Accurate bound: 1.5·ε·m slack over the 1.25 theory constant; with
		// m = 0 the answer must be exact (allow ±1 for rank/ceil rounding).
		// Error is measured as distance from the target rank to the
		// answer's rank span — with duplicated values even the exact
		// quantile's point rank can jump far past the target.
		bound := 1.5*eps*m + 1
		if d := float64(orc.SpanError(r, v)); d > bound {
			t.Errorf("phi=%.2f: accurate error %g > %g (m=%g, stats %+v)", phi, d, bound, m, qs)
		}
		// Quick bound: 1.5·ε·N (Lemma 3).
		qv, err := eng.QuantileQuick(phi)
		if err != nil {
			t.Fatalf("QuantileQuick(%g): %v", phi, err)
		}
		qbound := 1.5*eps*n + 1
		if d := float64(orc.SpanError(r, qv)); d > qbound {
			t.Errorf("phi=%.2f: quick error %g > %g", phi, d, qbound)
		}
	}
}

func TestAccurateIsExactWithEmptyStream(t *testing.T) {
	eng := newEngine(t, 0.1, 3)
	gen := workload.NewUniform(7)
	orc := oracle.New(0)
	for step := 0; step < 10; step++ {
		batch := workload.Fill(gen, 500)
		eng.ObserveSlice(batch)
		orc.Add(batch...)
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	// Stream is empty: accurate answers must be the exact quantiles.
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 1.0} {
		want, err := orc.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("phi=%g: got %d, want exact %d", phi, got, want)
		}
	}
}

func TestRankQuery(t *testing.T) {
	eng := newEngine(t, 0.1, 3)
	for i := int64(1); i <= 1000; i++ {
		eng.Observe(i)
	}
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	v, _, err := eng.RankQuery(500)
	if err != nil {
		t.Fatal(err)
	}
	if v != 500 { // empty stream → exact
		t.Errorf("RankQuery(500) = %d", v)
	}
	qv, err := eng.RankQueryQuick(500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(qv-500)) > 1.5*0.1*1000 {
		t.Errorf("RankQueryQuick(500) = %d", qv)
	}
}

func TestWindowQueries(t *testing.T) {
	eng := newEngine(t, 0.05, 3)
	gen := workload.NewNormal(3)
	// Keep per-step batches so we can rebuild any window's oracle.
	var batches [][]int64
	for step := 0; step < 13; step++ {
		batch := workload.Fill(gen, 400)
		batches = append(batches, batch)
		eng.ObserveSlice(batch)
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	stream := workload.Fill(gen, 300)
	eng.ObserveSlice(stream)

	wins := eng.AvailableWindows()
	if len(wins) == 0 {
		t.Fatal("no windows")
	}
	for _, w := range wins {
		orc := oracle.New(0)
		for _, b := range batches[len(batches)-w:] {
			orc.Add(b...)
		}
		orc.Add(stream...)
		n := float64(orc.Count())
		for _, phi := range []float64{0.25, 0.5, 0.9} {
			r := int64(math.Ceil(phi * n))
			v, _, err := eng.WindowQuantile(phi, w)
			if err != nil {
				t.Fatalf("window %d: %v", w, err)
			}
			bound := 1.5*0.05*float64(len(stream)) + 1
			if d := float64(orc.SpanError(r, v)); d > bound {
				t.Errorf("window %d phi=%.2f: error %g > %g", w, phi, d, bound)
			}
			qv, err := eng.WindowQuantileQuick(phi, w)
			if err != nil {
				t.Fatal(err)
			}
			if d := float64(orc.SpanError(r, qv)); d > 1.5*0.05*n+1 {
				t.Errorf("window %d phi=%.2f: quick error %g", w, phi, d)
			}
		}
	}
	// Misaligned windows error out.
	aligned := make(map[int]bool)
	for _, w := range wins {
		aligned[w] = true
	}
	for w := 1; w <= 13; w++ {
		if !aligned[w] {
			if _, _, err := eng.WindowQuantile(0.5, w); err == nil {
				t.Errorf("window %d should be rejected", w)
			}
		}
	}
}

func TestStreamOnlyQueries(t *testing.T) {
	eng := newEngine(t, 0.05, 3)
	orc := oracle.New(0)
	gen := workload.NewUniform(11)
	vals := workload.Fill(gen, 5000)
	eng.ObserveSlice(vals)
	orc.Add(vals...)
	checkAccuracy(t, eng, orc, 0.05)
}

func TestUpdateStats(t *testing.T) {
	eng := newEngine(t, 0.1, 2)
	var us UpdateStats
	for step := 0; step < 3; step++ {
		for i := 0; i < 1000; i++ {
			eng.Observe(int64(step*10000 + i))
		}
		var err error
		us, err = eng.EndStep()
		if err != nil {
			t.Fatal(err)
		}
		if us.BatchSize != 1000 {
			t.Errorf("BatchSize = %d", us.BatchSize)
		}
		if us.LoadIO.SeqWrites == 0 {
			t.Error("load phase wrote nothing")
		}
	}
	// κ=2: step 3 merges level 0.
	if us.Merges != 1 {
		t.Errorf("Merges = %d, want 1", us.Merges)
	}
	if us.MergeIO.Total() == 0 {
		t.Error("merge did no I/O")
	}
	if us.TotalIO() < us.MergeIO.Total() {
		t.Error("TotalIO inconsistent")
	}
	if us.TotalTime() <= 0 {
		t.Error("TotalTime not positive")
	}
	if eng.Steps() != 3 || eng.PartitionCount() != 1 {
		t.Errorf("steps=%d partitions=%d", eng.Steps(), eng.PartitionCount())
	}
}

func TestQueryStatsReportIO(t *testing.T) {
	eng := newEngine(t, 0.01, 3)
	gen := workload.NewUniform(13)
	for step := 0; step < 10; step++ {
		eng.ObserveSlice(workload.Fill(gen, 5000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 1000))
	before := eng.DiskStats()
	_, qs, err := eng.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d := eng.DiskStats().Sub(before)
	if qs.RandReads == 0 {
		t.Error("accurate query should read blocks at this eps")
	}
	if uint64(qs.RandReads) != d.RandReads {
		t.Errorf("QueryStats.RandReads=%d, device counted %d", qs.RandReads, d.RandReads)
	}
	if d.SeqWrites != 0 {
		t.Error("query must not write")
	}
	if qs.Iterations == 0 || qs.Elapsed <= 0 {
		t.Errorf("stats incomplete: %+v", qs)
	}
	// Quick query does no I/O at all.
	before = eng.DiskStats()
	if _, err := eng.QuantileQuick(0.5); err != nil {
		t.Fatal(err)
	}
	if got := eng.DiskStats().Sub(before); got.Total() != 0 {
		t.Errorf("quick query did I/O: %+v", got)
	}
}

func TestMemoryUsage(t *testing.T) {
	eng := newEngine(t, 0.05, 3)
	gen := workload.NewNormal(17)
	for step := 0; step < 5; step++ {
		eng.ObserveSlice(workload.Fill(gen, 2000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	eng.ObserveSlice(workload.Fill(gen, 500))
	mu := eng.MemoryUsage()
	if mu.HistBytes == 0 || mu.StreamBytes == 0 {
		t.Errorf("memory usage: %+v", mu)
	}
	if mu.Total() != mu.HistBytes+mu.StreamBytes {
		t.Error("Total mismatch")
	}
	if mu.StreamPeakBytes < mu.StreamBytes {
		t.Error("peak below live")
	}
	// HS fits the Lemma 8 model within a small constant.
	planned := PlannedHistBytes(eng.Epsilon(), eng.Steps(), eng.Kappa())
	if float64(mu.HistBytes) > 3*planned {
		t.Errorf("HistBytes %d far above plan %g", mu.HistBytes, planned)
	}
}

func TestConcurrentObserveAndQuery(t *testing.T) {
	eng := newEngine(t, 0.05, 3)
	gen := workload.NewUniform(19)
	// Preload history so queries have something to read.
	for step := 0; step < 4; step++ {
		eng.ObserveSlice(workload.Fill(gen, 1000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var observer sync.WaitGroup
	observer.Add(1)
	go func() {
		defer observer.Done()
		g := workload.NewUniform(23)
		for {
			select {
			case <-stop:
				return
			default:
				eng.Observe(g.Next())
			}
		}
	}()
	var queries sync.WaitGroup
	for q := 0; q < 4; q++ {
		queries.Add(1)
		go func() {
			defer queries.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := eng.Quantile(0.5); err != nil {
					t.Errorf("concurrent Quantile: %v", err)
					return
				}
				if _, err := eng.QuantileQuick(0.9); err != nil {
					t.Errorf("concurrent QuantileQuick: %v", err)
					return
				}
			}
		}()
	}
	queries.Wait()
	close(stop)
	observer.Wait()
}

func TestCheckpointAndOpen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Epsilon: 0.05, Kappa: 3, Dir: dir, BlockSize: 1024}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewNormal(29)
	orc := oracle.New(0)
	for step := 0; step < 8; step++ {
		batch := workload.Fill(gen, 600)
		eng.ObserveSlice(batch)
		orc.Add(batch...)
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.HistCount() != eng.HistCount() || re.Steps() != eng.Steps() {
		t.Errorf("reopened: hist=%d steps=%d", re.HistCount(), re.Steps())
	}
	// Empty stream → exact.
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		want, _ := orc.Quantile(phi)
		got, _, err := re.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("reopened phi=%g: %d vs %d", phi, got, want)
		}
	}
	// Opening a directory without a manifest fails cleanly.
	if _, err := OpenEngine(Config{Epsilon: 0.05, Kappa: 3, Dir: t.TempDir()}); err == nil {
		t.Error("OpenEngine without manifest: want error")
	}
}

func TestDestroy(t *testing.T) {
	eng := newEngine(t, 0.1, 3)
	eng.Observe(1)
	if _, err := eng.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Destroy(); err != nil {
		t.Fatal(err)
	}
	if eng.HistCount() != 0 {
		t.Error("history survived Destroy")
	}
}

func TestNoBlockPinStillCorrect(t *testing.T) {
	eng, err := New(Config{Epsilon: 0.02, Kappa: 3, Dir: t.TempDir(), BlockSize: 1024, NoBlockPin: true})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniform(31)
	orc := oracle.New(0)
	for step := 0; step < 6; step++ {
		batch := workload.Fill(gen, 1500)
		eng.ObserveSlice(batch)
		orc.Add(batch...)
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	stream := workload.Fill(gen, 800)
	eng.ObserveSlice(stream)
	orc.Add(stream...)
	checkAccuracy(t, eng, orc, 0.02)
}

func TestQuantileMonotoneInPhi(t *testing.T) {
	eng := newEngine(t, 0.05, 3)
	gen := workload.NewWikipedia(37)
	for step := 0; step < 5; step++ {
		eng.ObserveSlice(workload.Fill(gen, 1000))
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	phis := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}
	vals := make([]int64, len(phis))
	for i, phi := range phis {
		v, _, err := eng.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = v
	}
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] <= vals[j] }) {
		t.Errorf("quantiles not monotone: %v", vals)
	}
}

func TestDescribe(t *testing.T) {
	eng := newEngine(t, 0.1, 2)
	for step := 0; step < 3; step++ {
		for i := 0; i < 100; i++ {
			eng.Observe(int64(step*100 + i))
		}
		if _, err := eng.EndStep(); err != nil {
			t.Fatal(err)
		}
	}
	// κ=2, 3 steps: level 0 emptied by a merge into level 1.
	levels := eng.Describe()
	if len(levels) != 2 {
		t.Fatalf("levels = %+v", levels)
	}
	if levels[0].Partitions != 0 || levels[1].Partitions != 1 {
		t.Errorf("layout = %+v", levels)
	}
	if levels[1].Elements != 300 || levels[1].Steps != 3 {
		t.Errorf("level 1 = %+v", levels[1])
	}
}

func TestObserveSliceMatchesObserve(t *testing.T) {
	a := newEngine(t, 0.05, 3)
	b := newEngine(t, 0.05, 3)
	gen := workload.NewUniform(61)
	vals := workload.Fill(gen, 5000)
	for _, v := range vals {
		a.Observe(v)
	}
	b.ObserveSlice(vals)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		av, err := a.QuantileQuick(phi)
		if err != nil {
			t.Fatal(err)
		}
		bv, err := b.QuantileQuick(phi)
		if err != nil {
			t.Fatal(err)
		}
		if av != bv {
			t.Errorf("phi=%g: Observe %d != ObserveSlice %d", phi, av, bv)
		}
	}
	if _, err := a.EndStep(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EndStep(); err != nil {
		t.Fatal(err)
	}
	av, _, err := a.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	bv, _, err := b.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if av != bv {
		t.Errorf("post-step: %d != %d", av, bv)
	}
}
