package hsq

import (
	"context"
)

// Context variants of the mutating and query methods. Each checks the
// context before starting; the accurate-query variants additionally poll it
// between bisection probes, so a cancelled dashboard request abandons its
// remaining random disk reads mid-search. Load-side work (EndStepCtx) is
// checked only at entry: a partition load or level merge must run to
// completion once started, or the warehouse would be left with a
// half-written partition.

// ObserveCtx is Observe with error reporting: the element is dropped (and
// the context error returned) if ctx is already done, and ErrClosed is
// returned — unlike Observe's silent no-op — on a closed engine.
func (e *Engine) ObserveCtx(ctx context.Context, v int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.observe(v)
}

// ObserveSliceCtx is ObserveSlice with error reporting; the slice is
// observed atomically or not at all.
func (e *Engine) ObserveSliceCtx(ctx context.Context, vs []int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.observeSlice(vs)
}

// EndStepCtx is EndStep with cancellation. It is checked at entry, and —
// under async maintenance — while blocked on MaxPendingSteps backpressure:
// a cancelled producer stops waiting for the maintenance backlog to drain.
// A started load/merge still runs to completion to keep the warehouse
// consistent.
func (e *Engine) EndStepCtx(ctx context.Context) (UpdateStats, error) {
	if err := ctx.Err(); err != nil {
		return UpdateStats{}, err
	}
	return e.endStep(ctx)
}

// QuantileCtx is Quantile with cancellation, polled between bisection
// probes.
func (e *Engine) QuantileCtx(ctx context.Context, phi float64) (int64, QueryStats, error) {
	return e.QuantileOptsCtx(ctx, phi, QueryOpts{})
}

// QuantileOptsCtx is QuantileOpts with cancellation.
func (e *Engine) QuantileOptsCtx(ctx context.Context, phi float64, opts QueryOpts) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	return e.quantileOpts(phi, opts, ctx.Err)
}

// QuantilesCtx is Quantiles with cancellation, polled between bisection
// probes of every target.
func (e *Engine) QuantilesCtx(ctx context.Context, phis []float64) ([]int64, QueryStats, error) {
	return e.QuantilesOptsCtx(ctx, phis, QueryOpts{})
}

// QuantilesOptsCtx is QuantilesOpts with cancellation.
func (e *Engine) QuantilesOptsCtx(ctx context.Context, phis []float64, opts QueryOpts) ([]int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, QueryStats{}, err
	}
	return e.quantilesOpts(phis, opts, ctx.Err)
}

// RankQueryCtx is RankQuery with cancellation, polled between bisection
// probes.
func (e *Engine) RankQueryCtx(ctx context.Context, r int64) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	return e.rankQuery(r, ctx.Err)
}

// RankCtx is Rank with cancellation, checked at entry (a rank probe costs
// at most one block read per partition, so mid-flight polling buys little).
func (e *Engine) RankCtx(ctx context.Context, v int64) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	return e.Rank(v)
}

// WindowQuantileCtx is WindowQuantile with cancellation, polled between
// bisection probes.
func (e *Engine) WindowQuantileCtx(ctx context.Context, phi float64, steps int) (int64, QueryStats, error) {
	if err := ctx.Err(); err != nil {
		return 0, QueryStats{}, err
	}
	return e.windowQuantile(phi, steps, ctx.Err)
}
