// Package hsq (historical-streaming quantiles) implements the method of
// Singh, Srivastava and Tirthapura, "Estimating Quantiles from the Union of
// Historical and Streaming Data" (PVLDB 10(4), 2016): approximate
// φ-quantile queries over the union T = H ∪ R of a disk-resident historical
// warehouse H and an in-flight data stream R, with rank error ε·|R| — a
// fraction of the stream size rather than of the whole dataset.
//
// A stream is observed element by element; at the end of each time step the
// accumulated batch is loaded into the warehouse, which keeps sorted
// partitions organized in levels with a merge threshold κ. Small in-memory
// summaries of both sides (β₁ exactly-ranked samples per partition, a
// Greenwald-Khanna sketch of the stream) answer quick queries immediately
// and seed an accurate query that performs a handful of random disk reads.
//
// Basic usage:
//
//	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: dir})
//	...
//	eng.Observe(v)          // for each stream element
//	eng.EndStep()           // at each time-step boundary
//	med, _, err := eng.Quantile(0.5)   // accurate: error ≤ ε·|stream|
//	p99fast, err := eng.QuantileQuick(0.99) // in-memory only: error ≤ 1.5·ε·N
//
// # Storage
//
// The warehouse sits on a pluggable storage seam (internal/disk.Backend):
// Config.Backend selects "file" (a directory of flat files rooted at
// Config.Dir, the default) or "mem" (heap-resident, volatile — for tests,
// benchmarks and cache simulation). Config.CacheBlocks layers a sharded LRU
// block cache over either backend; random reads absorbed by the cache cost
// no disk access and are reported separately as CacheHits in IOStats and
// QueryStats, preserving the paper's "number of disk accesses" metric for
// the reads that actually reach storage.
//
//	fast, err := hsq.New(hsq.Config{Epsilon: 0.01, Backend: "mem", CacheBlocks: 4096})
//
// # Multiple streams
//
// A DB hosts many named quantile streams over one shared device: one
// backend, one block-cache budget, one manifest root. Each stream carries
// the full Engine surface; per-stream IOStats sum to the DB's aggregate,
// and the shared cache budget flows to whichever stream is hot (see
// BenchmarkMultiStream). Open resumes every stream recorded in the DB
// manifest, so a multi-stream daemon restarts cleanly.
//
//	db, err := hsq.Open(hsq.Options{Epsilon: 0.01, Dir: dir, CacheBlocks: 4096})
//	lat, err := db.Stream("api.latency")     // get-or-create
//	lat.Observe(17)
//	lat.EndStep()
//	p99, _, err := lat.Quantile(0.99)
//	db.Close()                               // checkpoint all streams, release backend
//
// Mutating and query methods have context variants (ObserveCtx,
// EndStepCtx, QuantileCtx, QuantilesOptsCtx, ...) that honor cancellation,
// polling the context between the random disk reads of an accurate query.
//
// # Durability
//
// The warehouse is crash-consistent, with one exact guarantee: after a
// crash, a reopened engine or DB recovers precisely a prefix of the time
// steps whose EndStep completed — per stream, every batch up to some
// completed step, never a torn or partial batch, with all quantile bounds
// intact over the recovered data. When EndStep returns nil that step is
// already durable, so the recovered prefix is at least everything that was
// acknowledged (it can exceed it by at most the one step that committed
// just before the crash). The in-flight batch of the current, unfinished
// step is volatile by design and is lost on a crash, exactly as a DSMS
// would replay or drop it.
//
// The guarantee comes from a write-data → sync → commit-manifest → sync
// ordering on every mutation: partition files are immutable once written
// and durable before the manifest that references them commits, manifests
// replace atomically, and files superseded by a commit (merged-away
// partitions, raw batch spills) are removed only after the commit is
// durable. Opening detects and garbage-collects whatever a half-finished
// install left behind instead of failing on it.
//
// Backend implementations must provide the three primitives this protocol
// leans on: WriteMeta must be crash-atomic (old content or new, never
// torn), Sync must be a durability barrier for every previously completed
// write, and List must enumerate files so recovery can find orphans. The
// file backend implements them with fsync and atomic renames; the
// conformance suite in internal/disk covers the contract, and the
// deterministic crash harness in internal/crashtest proves the end-to-end
// guarantee by crashing a seeded workload at every backend operation and
// reopening under adversarial recovery modes.
//
// See DESIGN.md for the full mapping from the paper's algorithms to this
// package and EXPERIMENTS.md for the reproduced evaluation.
package hsq
