// Package hsq (historical-streaming quantiles) implements the method of
// Singh, Srivastava and Tirthapura, "Estimating Quantiles from the Union of
// Historical and Streaming Data" (PVLDB 10(4), 2016): approximate
// φ-quantile queries over the union T = H ∪ R of a disk-resident historical
// warehouse H and an in-flight data stream R, with rank error ε·|R| — a
// fraction of the stream size rather than of the whole dataset.
//
// A stream is observed element by element; at the end of each time step the
// accumulated batch is loaded into the warehouse, which keeps sorted
// partitions organized in levels with a merge threshold κ. Small in-memory
// summaries of both sides (β₁ exactly-ranked samples per partition, a
// Greenwald-Khanna sketch of the stream) answer quick queries immediately
// and seed an accurate query that performs a handful of random disk reads.
//
// Basic usage:
//
//	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: dir})
//	...
//	eng.Observe(v)          // for each stream element
//	eng.EndStep()           // at each time-step boundary
//	med, _, err := eng.Quantile(0.5)   // accurate: error ≤ ε·|stream|
//	p99fast, err := eng.QuantileQuick(0.99) // in-memory only: error ≤ 1.5·ε·N
//
// # Storage
//
// The warehouse sits on a pluggable storage seam (internal/disk.Backend):
// Config.Backend selects "file" (a directory of flat files rooted at
// Config.Dir, the default) or "mem" (heap-resident, volatile — for tests,
// benchmarks and cache simulation). Config.CacheBlocks layers a sharded LRU
// block cache over either backend; random reads absorbed by the cache cost
// no disk access and are reported separately as CacheHits in IOStats and
// QueryStats, preserving the paper's "number of disk accesses" metric for
// the reads that actually reach storage.
//
//	fast, err := hsq.New(hsq.Config{Epsilon: 0.01, Backend: "mem", CacheBlocks: 4096})
//
// # Block format
//
// Config.BlockFormat (hsqd's -block-format, environment HSQ_BLOCK_FORMAT)
// selects how partition files are laid out on disk:
//
//   - "columnar" (default): a versioned compressed layout. The file opens
//     with an 8-byte magic; each block carries a 25-byte header — format
//     tag, element count, frame length, and the block's min/max values —
//     followed by a delta-encoded zig-zag varint frame (blocks whose deltas
//     don't compress fall back to a plain int64 frame per block). A footer
//     indexes every block (offset, count, min, max) so readers locate
//     blocks without scanning. Sorted runs typically pack 3-8x more
//     elements per block, and accurate queries consult the header min/max
//     before reading: a bisection step whose probe value falls outside a
//     block's bounds resolves with no access at all, reported as
//     SkippedBlocks in IOStats and QueryStats.
//   - "raw": the original format — plain little-endian int64 frames, no
//     header. Unsorted batch spills always use raw regardless of the
//     setting, since delta frames only pay off on sorted data.
//
// Versioning rule: the format tag governs only new files. Readers detect
// the layout per file (magic plus footer validation, falling back to raw),
// so a warehouse written by an older version opens and queries unchanged,
// and raw and columnar partition files coexist — and merge — freely within
// one store.
//
// Cache accounting: the block cache charges cached blocks by their decoded
// size in bytes (Config.CacheBlocks × BlockSize is the byte budget), not by
// entry count — a decoded columnar block holds several blocks' worth of
// raw elements, and counting entries would hand the compressed format a
// hidden cache-size advantage in comparisons. `hsqbench -figure columnar`
// measures the format head to head at an equal byte budget.
//
// # Multiple streams
//
// A DB hosts many named quantile streams over one shared device: one
// backend, one block-cache budget, one manifest root. Each stream carries
// the full Engine surface; per-stream IOStats sum to the DB's aggregate,
// and the shared cache budget flows to whichever stream is hot (see
// BenchmarkMultiStream). Open reads only the stream directory from the DB
// manifest — cost proportional to the number of registered streams, not
// to their data — so a multi-stream daemon restarts in milliseconds
// regardless of warehouse size.
//
//	db, err := hsq.Open(hsq.Options{Epsilon: 0.01, Dir: dir, CacheBlocks: 4096})
//	lat, err := db.Stream("api.latency")     // get-or-create
//	lat.Observe(17)
//	lat.EndStep()
//	p99, _, err := lat.Quantile(0.99)
//	db.Close()                               // checkpoint all streams, release backend
//
// Mutating and query methods have context variants (ObserveCtx,
// EndStepCtx, QuantileCtx, QuantilesOptsCtx, ...) that honor cancellation,
// polling the context between the random disk reads of an accurate query
// (and, for EndStepCtx under async maintenance, while blocked on
// backpressure).
//
// # Query layer
//
// Package internal/query composes quantile queries across streams from a
// small operator set, evaluated lazily against pinned snapshots:
//
//   - member selection: explicit stream lists and/or a segment glob over
//     the '.'-separated name hierarchy ("api.*.latency", "api.**");
//   - merge: a group's member summaries are combined with
//     core.MergeShardSummaries — summaries move, never data;
//   - group-by: partition the member set by a 1-based name segment
//     (GroupBy(2) buckets "api.eu.lat" and "api.us.lat" by region);
//   - windows: tumbling or sliding series of step-aligned time windows;
//   - time travel: AsOfStep(n) answers as of the end of step n, excluding
//     the live buffer.
//
// Plans are built with db.Query() (or plain JSON via query.ParsePlan —
// the same object drives hsqd's POST /query and wire subscriptions):
//
//	res, err := db.Query().Match("api.*.latency").GroupBy(2).
//	        Windows(6, 1, 3).Phis(0.5, 0.99).Run()
//
// Error composition: each member summary carries per-item rank bands
// that are merge-invariant, so a merged or grouped answer keeps the
// single-stream guarantee — rank error at most ⌈1.5·ε·N⌉ where N is the
// union's element count in scope (the WindowResult reports both ε and
// the bound). Cold streams answer from their sealed-summary sidecar
// without hydrating, so a glob over a mostly-cold fleet costs no
// hydrations and no backend reads; a sidecar that fails its freshness
// cross-check against the stream manifest falls back to hydration.
//
// Retention caveat for AsOfStep and shifted windows: scoped answers are
// assembled from whole partitions, so both scope ends must land on
// partition boundaries. Background merges coarsen those boundaries over
// time — old cut points disappear as their partitions merge (κ controls
// how fast), and a query that cuts inside a merged partition is refused
// with the surviving boundaries listed rather than answered beyond the
// guarantee.
//
// Continuous queries push instead of poll: hsqclient.Subscribe registers
// a plan over the ingest connection and the server re-evaluates it after
// relevant end-of-step events, debounced (ingest.Config.PushDebounce)
// and coalesced to the latest state — delivery is at-least-once per
// dirty state, newest wins, intermediate states may be skipped, and a
// reconnect re-subscribes rather than replays. A malformed plan nacks
// just that subscription (wire.ErrCodePlan) and leaves the connection's
// ingest traffic untouched.
//
// # Stream lifecycle
//
// A stream is registered or hydrated. Registered means the DB knows the
// name: an entry in the directory manifest plus a ~150-byte in-memory
// descriptor, nothing else. Hydrated means the stream's engine is
// resident — summaries rebuilt, maintenance resumed, queries served from
// memory plus a few random reads. Registration happens in Stream (get-or-
// create) or RegisterStreams (bulk, one manifest commit for any number of
// names); hydration happens lazily, on the first operation that needs the
// engine, outside the DB-wide lock — a slow cold open (large manifest,
// summary-rebuild scan) never blocks operations on other streams, and two
// goroutines touching the same cold stream hydrate it exactly once.
//
// Config.MaxHydratedStreams bounds how many engines stay resident (0, the
// default, means unbounded). Past the budget the DB evicts
// least-recently-used idle streams: eviction seals the stream — drains
// its maintenance backlog, commits its manifest, waits out in-flight
// queries — and then drops the engine, so an evicted stream loses
// nothing and its next touch rehydrates the exact same state. In-flight
// operations pin their engine (never evicted mid-query), and a stream
// holding a live observe buffer is not evictable — only EndStep may cut
// a batch — so the budget is a target the DB converges to as streams go
// idle, not a hard cap. Lookup returns a handle without hydrating;
// Stream.Hydrated reports residency; DB.DirectoryStats (and hsqd's GET
// /streams) counts registered vs hydrated streams and cumulative
// hydrations/evictions. The "cardinality" hsqbench figure quantifies the
// point: registered streams grown 1000× under a fixed budget, with
// resident heap tracking the hot set and hot-stream latency flat.
//
// DropStream commits the directory without the stream durably before
// deleting any file, and the name stays claimed until the deletion
// completes: Stream waits an in-flight drop out, RegisterStreams reports
// the conflict, and Lookup treats the stream as already gone. A
// re-created stream therefore always starts empty — it can never resume
// from the dropped stream's not-yet-deleted files.
//
// # Concurrency model
//
// Reads are snapshot-isolated. The store's published state is a chain of
// immutable versions (partition set + summaries); a query takes the engine
// lock only long enough to pin the current version and capture the
// memory-resident stream summaries, then runs its whole disk search outside
// any lock. Files a merge supersedes are reclaimed only once no durable
// manifest references them AND the last query pinning an older version has
// finished — so an in-flight query always reads a consistent, existing
// layout, no matter what maintenance does behind it.
//
// Config.Maintenance picks who executes the heavy half of EndStep (the
// external sort, level-0 install and cascading κ-way merges):
//
//   - "sync" (default): inline in EndStep, under the engine write lock —
//     the paper's loading paradigm, with ingest and queries paused for the
//     duration of the load.
//   - "async": EndStep only seals the step — the batch and GK sketch are
//     cut atomically, the raw batch is spilled, and a manifest referencing
//     the spill is durably committed — then a DB-wide scheduler (one
//     bounded pool of Config.MaintenanceWorkers workers shared by all
//     streams) installs sealed steps in the background, FIFO per stream.
//     Until a step's install completes, queries cover it through its
//     frozen stream summary, so answers always span the full observed
//     history; the rank-error bound degrades gracefully to ε times the
//     stream-side mass (live stream + sealed backlog), which
//     MaxPendingSteps bounds.
//   - "manual": seals like async but installs only when SyncMaintenance is
//     called — for deterministic harnesses (internal/crashtest).
//
// Backpressure: with async maintenance, EndStep blocks once
// Config.MaxPendingSteps sealed steps await installation, waking as
// installs complete; EndStepCtx aborts the wait on cancellation. A stream
// that wants a fully-merged, quiesced layout (before a benchmark, a
// snapshot copy, a test assertion) calls SyncMaintenance; DB.WaitIdle is
// the all-streams barrier. MaintenanceStats (per stream) and
// DB.SchedulerStats (pool occupancy, aggregate merge debt,
// maintenance-attributed I/O) expose the machinery.
//
// The durability guarantee is mode-independent: a nil EndStep return means
// the step survives any crash. In async/manual modes a sealed step's spill
// is its durable form — reopening re-installs sealed steps from their
// spills before serving.
//
// # Query performance
//
// Quantiles and QuantilesOpts answer a set of φ targets in one shared
// value-space sweep rather than k independent bisections. The sweep probes
// the midpoint of the lowest-rank unresolved target, so that target walks
// exactly its solo probe sequence — a k-target call never costs more
// probes than k single-target calls — while targets whose filters bracket
// the probe narrow for free and one accepting probe resolves every target
// within its acceptance band. Banded φ sets (within ε·m/n of each other)
// see ≥2× fewer probes; spread sets tie on probes but share cursor
// descents, cutting backend reads. QueryOpts composes unchanged: MaxReads
// bounds the sweep's total backend reads (unresolved targets fall back to
// the quick estimate and Truncated is set), Interrupt aborts it, and
// Parallel walks independent subranges concurrently.
//
// Each published store version carries a bounded memo of resolved rank
// probes (Config.ProbeMemoEntries; default 4096, negative disables).
// Versions are immutable, so memo entries can never go stale — they die
// with their version, with no invalidation protocol. Repeating a query on
// an unchanged snapshot resolves entirely from the memo:
// QueryStats.MemoHits equals Iterations and RandReads is zero. Memo hits,
// cache hits and skipped blocks are the absence of a disk access: none of
// them spend QueryOpts.MaxReads budget or count toward the paper's
// disk-access metric. Window queries bypass the memo (their ranks are
// window-relative); Engine.MemoStats aggregates counters across versions.
//
// # Durability
//
// The warehouse is crash-consistent, with one exact guarantee: after a
// crash, a reopened engine or DB recovers precisely a prefix of the time
// steps whose EndStep completed — per stream, every batch up to some
// completed step, never a torn or partial batch, with all quantile bounds
// intact over the recovered data. When EndStep returns nil that step is
// already durable, so the recovered prefix is at least everything that was
// acknowledged (it can exceed it by at most the one step that committed
// just before the crash). The in-flight batch of the current, unfinished
// step is volatile by design and is lost on a crash, exactly as a DSMS
// would replay or drop it.
//
// The guarantee comes from a write-data → sync → commit-manifest → sync
// ordering on every mutation: partition files are immutable once written
// and durable before the manifest that references them commits, manifests
// replace atomically, and files superseded by a commit (merged-away
// partitions, raw batch spills) are removed only after the commit is
// durable — and, with snapshot-isolated reads, only after the last pinned
// version that could read them is released. Opening detects and
// garbage-collects whatever a half-finished install left behind instead of
// failing on it, and re-installs any steps that were sealed but not yet
// installed when the process died.
//
// Backend implementations must provide the three primitives this protocol
// leans on: WriteMeta must be crash-atomic (old content or new, never
// torn), Sync must be a durability barrier for every previously completed
// write, and List must enumerate files so recovery can find orphans. The
// file backend implements them with fsync and atomic renames; the
// conformance suite in internal/disk covers the contract, and the
// deterministic crash harness in internal/crashtest proves the end-to-end
// guarantee by crashing a seeded workload at every backend operation and
// reopening under adversarial recovery modes.
//
// # Remote ingestion
//
// Producers in another process feed a DB through the remote ingest
// subsystem: hsqd's -ingest-addr TCP listener speaks a versioned,
// length-prefixed binary frame protocol (internal/wire) whose value
// batches are delta-encoded zig-zag varints, and the public hsqclient
// package is its batching SDK (Dial, Stream, Observe/ObserveSlice,
// EndStep, Flush, Close). Batches and end-of-step markers are sequenced,
// applied in order through the ObserveSlice fast path, and acknowledged
// cumulatively after application; a reconnecting client resumes its
// session and replays only unacknowledged frames, giving exactly-once
// application per server process. Backpressure is explicit: a credit
// window bounds frames in flight, the server applies each frame before
// reading the next, and a stream stalled on MaxPendingSteps stops acking
// until the producer's Observe blocks. The server pipeline lives in
// internal/ingest; GET /ingest exposes its counters. The HTTP observe
// endpoint also accepts batched JSON ({"values":[...]}) for producers
// that prefer it; BenchmarkRemoteIngest and the "ingest" hsqbench figure
// measure the gap between the two paths.
//
// # Cluster
//
// Several hsqd nodes form a sharded, replicated deployment
// (internal/cluster): an explicit, epoch-numbered membership and a
// deterministic consistent-hash ring place each stream on an owner node
// plus R−1 follower replicas. Every node is a full front door — wire
// frames and REST writes for streams placed elsewhere are routed to the
// owning shard with the client's own session token and sequence numbers,
// so the per-session replay machinery gives exactly-once application end
// to end; a member applies each sequenced frame locally, fans it to the
// stream's other members, and acknowledges the client only after every
// reachable member acknowledged. A client whose node dies fails over to
// another address (hsqclient.Dial accepts a comma-separated list), learns
// per-stream applied high-water marks from the Welcome, and replays only
// what is missing.
//
// Queries compose the same way the engine composes H and R: each shard
// exports its in-memory state as a core.ShardSummary (Engine.Summary, the
// wire's SummaryReq/SummaryResp frames), and a coordinator merges any set
// of them with core.MergeShardSummaries into one Combined summary whose
// quick answers are within 1.5·ε·N of the true rank over the union —
// distribution costs latency, never accuracy. The replication guarantee
// is bounded, not absolute: a follower unreachable past the transport's
// DownAfter is declared down and its fan-out frames are dropped (counted,
// visible in hsqd's GET /cluster) so ingest degrades instead of blocking;
// there is no automatic rebalancing and no cross-member read-your-writes
// within a step. Peer summaries a coordinator fetches for streams it does
// not host are cached per {stream, node, ring epoch} for
// cluster.Config.SummaryTTL (hsqd -summary-cache-ttl, default 2s,
// negative disables), invalidated early when the node relays an
// end-of-step frame for the stream and wholesale on membership-epoch
// change; a cached summary can be stale only by in-flight data the
// 1.5·ε·N quick-query bound already absorbs. TestClusterEndToEnd and the node-kill harness in
// internal/crashtest prove the failover contract under -race.
//
// See DESIGN.md for the full mapping from the paper's algorithms to this
// package and EXPERIMENTS.md for the reproduced evaluation.
package hsq
