// Package hsq (historical-streaming quantiles) implements the method of
// Singh, Srivastava and Tirthapura, "Estimating Quantiles from the Union of
// Historical and Streaming Data" (PVLDB 10(4), 2016): approximate
// φ-quantile queries over the union T = H ∪ R of a disk-resident historical
// warehouse H and an in-flight data stream R, with rank error ε·|R| — a
// fraction of the stream size rather than of the whole dataset.
//
// A stream is observed element by element; at the end of each time step the
// accumulated batch is loaded into the warehouse, which keeps sorted
// partitions organized in levels with a merge threshold κ. Small in-memory
// summaries of both sides (β₁ exactly-ranked samples per partition, a
// Greenwald-Khanna sketch of the stream) answer quick queries immediately
// and seed an accurate query that performs a handful of random disk reads.
//
// Basic usage:
//
//	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: dir})
//	...
//	eng.Observe(v)          // for each stream element
//	eng.EndStep()           // at each time-step boundary
//	med, _, err := eng.Quantile(0.5)   // accurate: error ≤ ε·|stream|
//	p99fast, err := eng.QuantileQuick(0.99) // in-memory only: error ≤ 1.5·ε·N
//
// # Storage
//
// The warehouse sits on a pluggable storage seam (internal/disk.Backend):
// Config.Backend selects "file" (a directory of flat files rooted at
// Config.Dir, the default) or "mem" (heap-resident, volatile — for tests,
// benchmarks and cache simulation). Config.CacheBlocks layers a sharded LRU
// block cache over either backend; random reads absorbed by the cache cost
// no disk access and are reported separately as CacheHits in IOStats and
// QueryStats, preserving the paper's "number of disk accesses" metric for
// the reads that actually reach storage.
//
//	fast, err := hsq.New(hsq.Config{Epsilon: 0.01, Backend: "mem", CacheBlocks: 4096})
//
// # Multiple streams
//
// A DB hosts many named quantile streams over one shared device: one
// backend, one block-cache budget, one manifest root. Each stream carries
// the full Engine surface; per-stream IOStats sum to the DB's aggregate,
// and the shared cache budget flows to whichever stream is hot (see
// BenchmarkMultiStream). Open resumes every stream recorded in the DB
// manifest, so a multi-stream daemon restarts cleanly.
//
//	db, err := hsq.Open(hsq.Options{Epsilon: 0.01, Dir: dir, CacheBlocks: 4096})
//	lat, err := db.Stream("api.latency")     // get-or-create
//	lat.Observe(17)
//	lat.EndStep()
//	p99, _, err := lat.Quantile(0.99)
//	db.Close()                               // checkpoint all streams, release backend
//
// Mutating and query methods have context variants (ObserveCtx,
// EndStepCtx, QuantileCtx, QuantilesOptsCtx, ...) that honor cancellation,
// polling the context between the random disk reads of an accurate query.
//
// See DESIGN.md for the full mapping from the paper's algorithms to this
// package and EXPERIMENTS.md for the reproduced evaluation.
package hsq
