package hsq

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/gk"
	"repro/internal/partition"
)

// manifestName is the per-store manifest file (relative to the store's
// namespace on the device).
const manifestName = "MANIFEST.json"

// ErrClosed is returned by operations on an Engine, Stream or DB after
// Close.
var ErrClosed = errors.New("hsq: closed")

// Config parametrizes an Engine. Epsilon is always required; Dir is
// required for the file backend. Every other field has a sensible default
// matching the paper's experimental setup.
type Config struct {
	// Epsilon is the approximation parameter ε ∈ (0,1): accurate queries
	// return elements whose rank errs by at most ε·m where m is the current
	// stream size (Theorem 2).
	Epsilon float64
	// Kappa is the merge threshold κ ≥ 2 (default 10, the paper's default).
	Kappa int
	// Backend selects the warehouse storage backend: "file" (default, a
	// directory of flat files rooted at Dir) or "mem" (heap-resident, for
	// tests, benchmarks and cache simulation; state dies with the process).
	Backend string
	// Device, when non-nil, is a pre-constructed storage backend that
	// overrides Backend and Dir — the hook simulation harnesses use to run
	// an engine or DB over an instrumented backend (e.g. the deterministic
	// crash simulator in internal/disk). Most callers should leave it nil
	// and use Backend/Dir.
	Device disk.Backend
	// Dir is the directory backing the on-disk warehouse. Required for the
	// file backend; ignored by "mem".
	Dir string
	// CacheBlocks, when positive, installs a sharded LRU block cache of
	// that many blocks between the engine and the backend. Cached random
	// reads cost no disk access: they are reported as CacheHits instead of
	// RandReads in IOStats and QueryStats.
	CacheBlocks int
	// BlockSize is the disk block size in bytes (default 100 KB, the
	// paper's B).
	BlockSize int
	// SortMemElements bounds the memory used when sorting a batch; larger
	// batches use external sort (default 1M elements).
	SortMemElements int
	// NoSpill disables writing the raw batch to disk before sorting. The
	// paper's loading paradigm spills (the "load" phase of Figure 6);
	// disable only in tests.
	NoSpill bool
	// NoBlockPin disables the §2.4 optimization that pins a partition's
	// final block in memory during a query.
	NoBlockPin bool
	// ParallelQuery probes all partitions concurrently during accurate
	// queries — the paper's §4 future-work parallelization. Worthwhile when
	// the store holds many partitions on hardware with parallel read paths.
	ParallelQuery bool
	// MergeWorkers > 1 parallelizes level merges across value ranges (§4
	// future work). Costs one extra sequential pass over merged data.
	MergeWorkers int
	// SimulateDisk injects per-block latency so wall-clock timings track
	// I/O counts even when the OS page cache hides the real device:
	// "" (off, default), "hdd" (the paper's ~1 ms random access) or "ssd".
	SimulateDisk string
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Epsilon <= 0 || out.Epsilon >= 1 {
		return out, fmt.Errorf("hsq: Epsilon must be in (0,1), got %g", out.Epsilon)
	}
	if out.Kappa == 0 {
		out.Kappa = 10
	}
	if out.Kappa < 2 {
		return out, fmt.Errorf("hsq: Kappa must be >= 2, got %d", out.Kappa)
	}
	if out.Device == nil && out.Dir == "" && (out.Backend == "" || out.Backend == "file") {
		return out, fmt.Errorf("hsq: Dir is required for the file backend")
	}
	if out.CacheBlocks < 0 {
		return out, fmt.Errorf("hsq: CacheBlocks must be >= 0, got %d", out.CacheBlocks)
	}
	if out.BlockSize == 0 {
		out.BlockSize = disk.DefaultBlockSize
	}
	if out.SortMemElements == 0 {
		out.SortMemElements = 1 << 20
	}
	return out, nil
}

// IOStats mirrors the block-level I/O counters of the warehouse device.
// RandReads counts only reads that reached the storage backend; random
// probes absorbed by the block cache appear as CacheHits.
type IOStats struct {
	SeqReads    uint64
	SeqWrites   uint64
	RandReads   uint64
	CacheHits   uint64
	CacheMisses uint64
}

// Total returns the total number of block accesses.
func (s IOStats) Total() uint64 { return s.SeqReads + s.SeqWrites + s.RandReads }

// Sub returns the element-wise difference, with each counter clamped at
// zero (counters may have been reset between the two snapshots).
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{
		SeqReads:    subClamp(s.SeqReads, t.SeqReads),
		SeqWrites:   subClamp(s.SeqWrites, t.SeqWrites),
		RandReads:   subClamp(s.RandReads, t.RandReads),
		CacheHits:   subClamp(s.CacheHits, t.CacheHits),
		CacheMisses: subClamp(s.CacheMisses, t.CacheMisses),
	}
}

func subClamp(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func fromDisk(d disk.Stats) IOStats {
	return IOStats{
		SeqReads:    d.SeqReads,
		SeqWrites:   d.SeqWrites,
		RandReads:   d.RandReads,
		CacheHits:   d.CacheHits,
		CacheMisses: d.CacheMisses,
	}
}

// UpdateStats reports the cost of one EndStep, split into the paper's four
// phases (Figure 6): loading the raw batch, sorting it into a level-0
// partition, merging overflowing levels, and summary maintenance.
type UpdateStats struct {
	Load, Sort, Merge, Summary time.Duration
	LoadIO, SortIO, MergeIO    IOStats
	Merges                     int
	BatchSize                  int64
}

// TotalTime returns the total update time.
func (u UpdateStats) TotalTime() time.Duration { return u.Load + u.Sort + u.Merge + u.Summary }

// TotalIO returns the total block accesses of the update.
func (u UpdateStats) TotalIO() uint64 {
	return u.LoadIO.Total() + u.SortIO.Total() + u.MergeIO.Total()
}

// QueryStats reports the cost of one accurate query.
type QueryStats struct {
	// Iterations is the number of value-space bisection probes.
	Iterations int
	// RandReads is the number of random block reads that reached the
	// storage backend.
	RandReads int
	// CacheHits is the number of block probes served by the block cache,
	// costing no disk access.
	CacheHits int
	// FilterU and FilterV bracket the search (Algorithm 7 output).
	FilterU, FilterV int64
	// Elapsed is the wall-clock query time.
	Elapsed time.Duration
	// Truncated reports that a MaxReads budget stopped the search early.
	Truncated bool
}

// QueryOpts tunes one accurate query beyond the engine defaults.
type QueryOpts struct {
	// MaxReads caps random block reads for this query; 0 means unlimited.
	// When the cap is hit the search stops early and returns its best
	// current answer with QueryStats.Truncated set — trading accuracy for
	// disk accesses, the third axis of the paper's concluding tradeoff
	// discussion.
	MaxReads int
}

// MemoryUsage breaks down the engine's summary memory (Observation 1).
type MemoryUsage struct {
	// HistBytes is the historical summary HS (Lemma 8).
	HistBytes int64
	// StreamBytes is the live GK sketch (Lemma 9).
	StreamBytes int64
	// StreamPeakBytes is the GK sketch's high-water mark this time step.
	StreamPeakBytes int64
}

// Total returns the combined live footprint.
func (m MemoryUsage) Total() int64 { return m.HistBytes + m.StreamBytes }

// Engine answers quantile queries over the union of a historical warehouse
// and the current stream. It is safe for concurrent use: observations and
// step boundaries take a write lock, queries a read lock.
//
// An Engine is the single-stream core of the package: the multi-stream DB
// hosts one Engine per named stream (wrapped in a Stream) over namespaced
// views of one shared device, while New and OpenEngine build a standalone
// Engine owning its whole device — the original single-tenant shape.
type Engine struct {
	mu     sync.RWMutex
	cfg    Config
	eps1   float64
	eps2   float64
	dev    *disk.Manager
	store  *partition.Store
	sketch *gk.Sketch
	batch  []int64
	step   int
	closed bool
	// ownsDev marks standalone engines whose Close releases the backend;
	// DB-hosted engines share the device, which the DB releases once.
	ownsDev bool
}

// newDevice builds the warehouse block device described by cfg: backend,
// block size, block cache and simulated latency profile.
func newDevice(cfg Config) (*disk.Manager, error) {
	b := cfg.Device
	if b == nil {
		var err error
		b, err = disk.OpenBackend(cfg.Backend, cfg.Dir)
		if err != nil {
			return nil, err
		}
	}
	dev, err := disk.NewManagerOn(b, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	if cfg.CacheBlocks > 0 {
		dev.SetCache(cfg.CacheBlocks)
	}
	if err := applyDiskProfile(dev, cfg.SimulateDisk); err != nil {
		return nil, err
	}
	return dev, nil
}

// storeConfig derives the partition-store configuration from an engine
// config — the one place every knob is forwarded, shared by fresh and
// resumed stores so they cannot drift apart.
func storeConfig(cfg Config, eps1 float64, namespace string) partition.Config {
	return partition.Config{
		Kappa:           cfg.Kappa,
		Eps1:            eps1,
		SortMemElements: cfg.SortMemElements,
		SpillBatches:    !cfg.NoSpill,
		MergeWorkers:    cfg.MergeWorkers,
		Namespace:       namespace,
	}
}

// newEngineOn builds (or, with resume, reopens) an engine core over an
// already-constructed device view. full must have passed withDefaults.
// namespace identifies the stream when the view is namespaced ("" for
// standalone engines on a root view).
func newEngineOn(dev *disk.Manager, full Config, namespace string, resume bool) (*Engine, error) {
	eps1 := full.Epsilon / 2
	eps2 := full.Epsilon / 4
	pcfg := storeConfig(full, eps1, namespace)
	var (
		store *partition.Store
		err   error
	)
	if resume {
		store, err = partition.LoadStore(dev, manifestName, pcfg)
	} else {
		store, err = partition.NewStore(dev, pcfg)
		if err == nil && namespace != "" {
			// A DB-hosted stream opening fresh may still find debris from a
			// crash before its first durable commit (the stream was in the
			// DB directory but never wrote a manifest). Nothing is
			// referenced yet, so everything matching the store's file
			// patterns is an orphan.
			if _, gcErr := partition.CollectOrphans(dev, nil); gcErr != nil {
				return nil, gcErr
			}
		}
	}
	if err != nil {
		return nil, err
	}
	// The GK sketch runs at ε₂/2 so the extracted stream summary satisfies
	// Lemma 1's one-sided band; see internal/gk.
	sketch, err := gk.New(eps2 / 2)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: full, eps1: eps1, eps2: eps2, dev: dev, store: store, sketch: sketch}
	e.step = store.Steps()
	return e, nil
}

// New creates an engine over the configured backend (rooted at cfg.Dir for
// the default file backend).
func New(cfg Config) (*Engine, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	dev, err := newDevice(full)
	if err != nil {
		return nil, err
	}
	e, err := newEngineOn(dev, full, "", false)
	if err != nil {
		return nil, err
	}
	e.ownsDev = true
	return e, nil
}

// Epsilon returns the engine's approximation parameter.
func (e *Engine) Epsilon() float64 { return e.cfg.Epsilon }

// Kappa returns the merge threshold.
func (e *Engine) Kappa() int { return e.cfg.Kappa }

// Observe feeds one stream element (StreamUpdate, Algorithm 4). The element
// is both summarized in the GK sketch and buffered for end-of-step loading.
// On a closed engine Observe is a no-op (the signature predates Close and
// cannot report an error); producers that need the failure signal should
// use ObserveCtx, which returns ErrClosed.
func (e *Engine) Observe(v int64) {
	e.observe(v) //nolint:errcheck // ErrClosed intentionally dropped, see doc
}

// ObserveSlice feeds a slice of stream elements under one lock acquisition.
// Like Observe, it is a no-op on a closed engine; ObserveSliceCtx reports
// ErrClosed instead.
func (e *Engine) ObserveSlice(vs []int64) {
	e.observeSlice(vs) //nolint:errcheck // ErrClosed intentionally dropped, see doc
}

func (e *Engine) observe(v int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.sketch.Insert(v)
	e.batch = append(e.batch, v)
	return nil
}

func (e *Engine) observeSlice(vs []int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for _, v := range vs {
		e.sketch.Insert(v)
	}
	e.batch = append(e.batch, vs...)
	return nil
}

// StreamCount returns m, the number of elements in the current (unloaded)
// stream.
func (e *Engine) StreamCount() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sketch.Count()
}

// HistCount returns n, the number of elements in the warehouse.
func (e *Engine) HistCount() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.TotalCount()
}

// TotalCount returns N = n + m.
func (e *Engine) TotalCount() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.TotalCount() + e.sketch.Count()
}

// Steps returns the number of completed time steps.
func (e *Engine) Steps() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.step
}

// PartitionCount returns the number of live partitions in HD.
func (e *Engine) PartitionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.PartitionCount()
}

// EndStep closes the current time step: the buffered batch is loaded into
// the warehouse (sorted into a level-0 partition, with level merges as
// needed), the new warehouse state is durably committed, and the stream
// sketch is reset (Algorithm 4, StreamReset). An empty stream is a no-op.
//
// The commit orders write-data → sync → commit-manifest → sync, so when
// EndStep returns nil the step survives any crash: a reopened engine
// recovers exactly the prefix of time steps whose EndStep completed. If
// the commit itself fails, the batch is already installed in memory (and
// its files on disk) but durability is not guaranteed; the error is
// surfaced, the step still advances in memory, and the next successful
// EndStep or Checkpoint re-commits the full state.
func (e *Engine) EndStep() (UpdateStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return UpdateStats{}, ErrClosed
	}
	if len(e.batch) == 0 {
		return UpdateStats{}, nil
	}
	bd, err := e.store.AddBatch(e.batch, e.step+1)
	if err != nil {
		return UpdateStats{}, fmt.Errorf("hsq: end step %d: %w", e.step+1, err)
	}
	us := UpdateStats{
		Load: bd.Load, Sort: bd.Sort, Merge: bd.Merge, Summary: bd.Summary,
		LoadIO: fromDisk(bd.LoadIO), SortIO: fromDisk(bd.SortIO), MergeIO: fromDisk(bd.MergeIO),
		Merges:    bd.Merges,
		BatchSize: int64(len(e.batch)),
	}
	e.step++
	e.batch = e.batch[:0]
	e.sketch.Reset()
	if err := e.store.Commit(manifestName); err != nil {
		return us, fmt.Errorf("hsq: commit step %d: %w", e.step, err)
	}
	return us, nil
}

// applyDiskProfile installs a simulated latency profile on the device.
func applyDiskProfile(dev *disk.Manager, profile string) error {
	switch profile {
	case "":
		return nil
	case "hdd":
		dev.SetLatency(disk.HDD)
	case "ssd":
		dev.SetLatency(disk.SSD)
	default:
		return fmt.Errorf("hsq: unknown disk profile %q (want \"\", \"hdd\" or \"ssd\")", profile)
	}
	return nil
}

// rankTarget converts a quantile fraction to a rank, clamped to [1, N].
func rankTarget(phi float64, n int64) (int64, error) {
	if phi <= 0 || phi > 1 {
		return 0, fmt.Errorf("hsq: phi must be in (0,1], got %g", phi)
	}
	r := int64(math.Ceil(phi * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r, nil
}

// Quantile answers an accurate φ-quantile query over T = H ∪ R with rank
// error ≤ ε·m (Algorithm 6 / Theorem 2), using a small number of random
// disk reads.
func (e *Engine) Quantile(phi float64) (int64, QueryStats, error) {
	return e.QuantileOpts(phi, QueryOpts{})
}

// RankQuery answers an accurate query for the element of rank r in T.
func (e *Engine) RankQuery(r int64) (int64, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, QueryStats{}, ErrClosed
	}
	return e.rankQueryLocked(r, e.store.Entries())
}

func (e *Engine) rankQueryLocked(r int64, sums []*partition.Summary) (int64, QueryStats, error) {
	return e.rankQueryOptsLocked(r, sums, QueryOpts{}, nil)
}

// rankQueryOptsLocked is the accurate-query core. interrupt, when non-nil,
// is polled between bisection probes (context cancellation).
func (e *Engine) rankQueryOptsLocked(r int64, sums []*partition.Summary, opts QueryOpts, interrupt func() error) (int64, QueryStats, error) {
	if e.closed {
		return 0, QueryStats{}, ErrClosed
	}
	m := e.sketch.Count()
	var histN int64
	for _, s := range sums {
		histN += s.Part.Count
	}
	if histN+m == 0 {
		return 0, QueryStats{}, fmt.Errorf("hsq: query on empty dataset")
	}
	t0 := time.Now()
	ss := core.StreamSummary(e.sketch, e.eps2)
	c := core.BuildCombined(sums, ss, m, e.eps1, e.eps2)
	v, cost, err := core.AccurateQueryOpts(c, e.cfg.Epsilon, r, core.QueryOptions{
		PinBlocks: !e.cfg.NoBlockPin,
		Parallel:  e.cfg.ParallelQuery,
		MaxReads:  opts.MaxReads,
		Interrupt: interrupt,
	})
	if err != nil {
		return 0, QueryStats{}, err
	}
	return v, QueryStats{
		Iterations: cost.Iterations,
		RandReads:  cost.RandReads,
		CacheHits:  cost.CacheHits,
		FilterU:    cost.FilterU,
		FilterV:    cost.FilterV,
		Elapsed:    time.Since(t0),
		Truncated:  cost.Truncated,
	}, nil
}

// QuantileOpts answers an accurate φ-quantile with per-query options (e.g.
// an I/O budget).
func (e *Engine) QuantileOpts(phi float64, opts QueryOpts) (int64, QueryStats, error) {
	return e.quantileOpts(phi, opts, nil)
}

func (e *Engine) quantileOpts(phi float64, opts QueryOpts, interrupt func() error) (int64, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, QueryStats{}, ErrClosed
	}
	n := e.store.TotalCount() + e.sketch.Count()
	r, err := rankTarget(phi, n)
	if err != nil {
		return 0, QueryStats{}, err
	}
	return e.rankQueryOptsLocked(r, e.store.Entries(), opts, interrupt)
}

// QuantileQuick answers a φ-quantile query from in-memory summaries only
// (Algorithm 5), with rank error ≤ 1.5·ε·N (Lemma 3) and zero disk reads.
func (e *Engine) QuantileQuick(phi float64) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.store.TotalCount() + e.sketch.Count()
	r, err := rankTarget(phi, n)
	if err != nil {
		return 0, err
	}
	return e.quickLocked(r, e.store.Entries())
}

// RankQueryQuick answers a rank query from in-memory summaries only.
func (e *Engine) RankQueryQuick(r int64) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.quickLocked(r, e.store.Entries())
}

func (e *Engine) quickLocked(r int64, sums []*partition.Summary) (int64, error) {
	if e.closed {
		return 0, ErrClosed
	}
	m := e.sketch.Count()
	var histN int64
	for _, s := range sums {
		histN += s.Part.Count
	}
	if histN+m == 0 {
		return 0, fmt.Errorf("hsq: query on empty dataset")
	}
	ss := core.StreamSummary(e.sketch, e.eps2)
	c := core.BuildCombined(sums, ss, m, e.eps1, e.eps2)
	return c.QuickQuery(r)
}

// AvailableWindows returns the historical window sizes (in time steps) that
// align with partition boundaries; windowed queries also include the
// current stream (paper §2.4, "Queries Over Windows").
func (e *Engine) AvailableWindows() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.AvailableWindows()
}

// WindowQuantile answers an accurate φ-quantile over the union of the
// current stream and the most recent `steps` historical time steps. The
// window must be one of AvailableWindows.
func (e *Engine) WindowQuantile(phi float64, steps int) (int64, QueryStats, error) {
	return e.windowQuantile(phi, steps, nil)
}

func (e *Engine) windowQuantile(phi float64, steps int, interrupt func() error) (int64, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, QueryStats{}, ErrClosed
	}
	sums, err := e.store.WindowEntries(steps)
	if err != nil {
		return 0, QueryStats{}, err
	}
	var histN int64
	for _, s := range sums {
		histN += s.Part.Count
	}
	n := histN + e.sketch.Count()
	r, err := rankTarget(phi, n)
	if err != nil {
		return 0, QueryStats{}, err
	}
	return e.rankQueryOptsLocked(r, sums, QueryOpts{}, interrupt)
}

// WindowQuantileQuick is the in-memory-only windowed query.
func (e *Engine) WindowQuantileQuick(phi float64, steps int) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sums, err := e.store.WindowEntries(steps)
	if err != nil {
		return 0, err
	}
	var histN int64
	for _, s := range sums {
		histN += s.Part.Count
	}
	n := histN + e.sketch.Count()
	r, err := rankTarget(phi, n)
	if err != nil {
		return 0, err
	}
	return e.quickLocked(r, sums)
}

// MemoryUsage returns the current summary footprint (Observation 1).
func (e *Engine) MemoryUsage() MemoryUsage {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return MemoryUsage{
		HistBytes:       e.store.MemoryBytes(),
		StreamBytes:     e.sketch.MemoryBytes(),
		StreamPeakBytes: e.sketch.MaxMemoryBytes(),
	}
}

// DiskStats returns cumulative block-level I/O counters for the warehouse
// device.
func (e *Engine) DiskStats() IOStats {
	return fromDisk(e.dev.Stats())
}

// Checkpoint durably persists the warehouse layout so OpenEngine can
// resume after a restart. EndStep already commits every completed step, so
// Checkpoint is only needed to retry after a failed commit (or as an
// explicit barrier). The in-flight stream is volatile by design (it will
// be replayed or lost, exactly as a DSMS would); only historical state is
// durable.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	return e.store.Commit(manifestName)
}

// OpenEngine resumes a standalone engine from a directory previously
// checkpointed with the same Epsilon and Kappa. Partition summaries are
// rebuilt with one sequential scan each, and files left behind by a
// half-finished install — partitions written but never committed, raw
// batch spills, sort temporaries — are detected and garbage-collected
// rather than failing the open. (It was named Open before the multi-stream
// redesign; Open now builds a DB.)
func OpenEngine(cfg Config) (*Engine, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	dev, err := newDevice(full)
	if err != nil {
		return nil, err
	}
	e, err := newEngineOn(dev, full, "", true)
	if err != nil {
		return nil, err
	}
	e.ownsDev = true
	return e, nil
}

// Close checkpoints the engine and releases it: the manifest is persisted,
// the engine transitions to a terminal state in which every subsequent
// mutation or query fails with ErrClosed, and — for standalone engines that
// own their device — the storage backend is released (closed, when the
// backend implements io.Closer). Close is idempotent.
//
// Destroy supersedes Close: a destroyed engine's on-disk state is gone, so
// there is nothing left to checkpoint and no need to call Close after it.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if err := e.store.Commit(manifestName); err != nil {
		return err
	}
	e.closed = true
	if e.ownsDev {
		if c, ok := e.dev.Backend().(io.Closer); ok {
			return c.Close()
		}
	}
	return nil
}

// Destroy removes all on-disk state. The engine is unusable afterwards (it
// behaves as closed). Destroy supersedes Close — after Destroy there is no
// state left to checkpoint.
func (e *Engine) Destroy() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.Destroy(); err != nil {
		return err
	}
	if e.dev.Exists(manifestName) {
		if err := e.dev.Remove(manifestName); err != nil {
			return err
		}
	}
	e.closed = true
	return nil
}

// Rank estimates the rank of an arbitrary value v within T = H ∪ R: the
// number of elements ≤ v. Historical partitions are counted exactly via
// per-partition binary search; the stream contributes an SS-based estimate,
// so the error is at most ~ε·m/4. This is the inverse primitive of
// Quantile.
func (e *Engine) Rank(v int64) (int64, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, QueryStats{}, ErrClosed
	}
	sums := e.store.Entries()
	m := e.sketch.Count()
	if e.store.TotalCount()+m == 0 {
		return 0, QueryStats{}, fmt.Errorf("hsq: rank query on empty dataset")
	}
	t0 := time.Now()
	ss := core.StreamSummary(e.sketch, e.eps2)
	c := core.BuildCombined(sums, ss, m, e.eps1, e.eps2)
	r, cost, err := core.RankOfValue(c, v, !e.cfg.NoBlockPin)
	if err != nil {
		return 0, QueryStats{}, err
	}
	return r, QueryStats{
		Iterations: cost.Iterations,
		RandReads:  cost.RandReads,
		CacheHits:  cost.CacheHits,
		Elapsed:    time.Since(t0),
	}, nil
}

// RankQuick estimates the rank of v from in-memory summaries only, with
// O(ε·N) error and zero disk reads.
func (e *Engine) RankQuick(v int64) (int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return 0, ErrClosed
	}
	sums := e.store.Entries()
	m := e.sketch.Count()
	if e.store.TotalCount()+m == 0 {
		return 0, fmt.Errorf("hsq: rank query on empty dataset")
	}
	ss := core.StreamSummary(e.sketch, e.eps2)
	c := core.BuildCombined(sums, ss, m, e.eps1, e.eps2)
	return c.QuickRank(v), nil
}

// Quantiles answers several accurate φ-quantile queries in one shot,
// building the combined summary once and sharing it across targets (the
// common "p50/p95/p99" dashboard pattern). Results are positionally aligned
// with phis; the stats aggregate all queries.
func (e *Engine) Quantiles(phis []float64) ([]int64, QueryStats, error) {
	return e.quantilesOpts(phis, QueryOpts{}, nil)
}

// QuantilesOpts is Quantiles with per-call options. opts.MaxReads, when
// positive, is a total random-read budget for the whole batch: each query
// runs with whatever budget its predecessors left, and once the budget is
// exhausted the remaining targets are answered from in-memory summaries
// alone (zero disk reads, QuantileQuick accuracy). Any truncation is
// aggregated into the returned QueryStats.Truncated.
func (e *Engine) QuantilesOpts(phis []float64, opts QueryOpts) ([]int64, QueryStats, error) {
	return e.quantilesOpts(phis, opts, nil)
}

func (e *Engine) quantilesOpts(phis []float64, opts QueryOpts, interrupt func() error) ([]int64, QueryStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, QueryStats{}, ErrClosed
	}
	sums := e.store.Entries()
	m := e.sketch.Count()
	n := e.store.TotalCount() + m
	if n == 0 {
		return nil, QueryStats{}, fmt.Errorf("hsq: query on empty dataset")
	}
	t0 := time.Now()
	ss := core.StreamSummary(e.sketch, e.eps2)
	c := core.BuildCombined(sums, ss, m, e.eps1, e.eps2)
	out := make([]int64, len(phis))
	var agg QueryStats
	remaining := opts.MaxReads
	for i, phi := range phis {
		r, err := rankTarget(phi, n)
		if err != nil {
			return nil, QueryStats{}, err
		}
		if opts.MaxReads > 0 && remaining <= 0 {
			// Budget exhausted: answer the rest from the in-memory
			// summaries, which cost no disk access.
			v, err := c.QuickQuery(r)
			if err != nil {
				return nil, QueryStats{}, err
			}
			out[i] = v
			agg.Truncated = true
			continue
		}
		v, cost, err := core.AccurateQueryOpts(c, e.cfg.Epsilon, r, core.QueryOptions{
			PinBlocks: !e.cfg.NoBlockPin,
			Parallel:  e.cfg.ParallelQuery,
			MaxReads:  remaining,
			Interrupt: interrupt,
		})
		if err != nil {
			return nil, QueryStats{}, err
		}
		out[i] = v
		agg.Iterations += cost.Iterations
		agg.RandReads += cost.RandReads
		agg.CacheHits += cost.CacheHits
		agg.Truncated = agg.Truncated || cost.Truncated
		if opts.MaxReads > 0 {
			remaining -= cost.RandReads
		}
	}
	agg.Elapsed = time.Since(t0)
	return out, agg, nil
}

// LevelInfo describes one level of the on-disk store.
type LevelInfo struct {
	// Level is the level number (0 = freshest batches).
	Level int
	// Partitions is the number of live partitions at this level (≤ κ).
	Partitions int
	// Elements is the total element count across the level.
	Elements int64
	// Steps is the number of time steps the level covers.
	Steps int
}

// Describe returns the warehouse layout, one entry per level.
func (e *Engine) Describe() []LevelInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []LevelInfo
	for _, li := range e.store.Describe() {
		out = append(out, LevelInfo{Level: li.Level, Partitions: li.Partitions, Elements: li.Elements, Steps: li.Steps})
	}
	return out
}
