package hsq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/gk"
	"repro/internal/partition"
)

// manifestName is the per-store manifest file (relative to the store's
// namespace on the device).
const manifestName = "MANIFEST.json"

// ErrClosed is returned by operations on an Engine, Stream or DB after
// Close.
var ErrClosed = errors.New("hsq: closed")

// Config parametrizes an Engine. Epsilon is always required; Dir is
// required for the file backend. Every other field has a sensible default
// matching the paper's experimental setup.
type Config struct {
	// Epsilon is the approximation parameter ε ∈ (0,1): accurate queries
	// return elements whose rank errs by at most ε·m where m is the current
	// stream size (Theorem 2).
	Epsilon float64
	// Kappa is the merge threshold κ ≥ 2 (default 10, the paper's default).
	Kappa int
	// Backend selects the warehouse storage backend: "file" (default, a
	// directory of flat files rooted at Dir) or "mem" (heap-resident, for
	// tests, benchmarks and cache simulation; state dies with the process).
	Backend string
	// Device, when non-nil, is a pre-constructed storage backend that
	// overrides Backend and Dir — the hook simulation harnesses use to run
	// an engine or DB over an instrumented backend (e.g. the deterministic
	// crash simulator in internal/disk). Most callers should leave it nil
	// and use Backend/Dir.
	Device disk.Backend
	// Dir is the directory backing the on-disk warehouse. Required for the
	// file backend; ignored by "mem".
	Dir string
	// CacheBlocks, when positive, installs a sharded LRU block cache of
	// that many blocks between the engine and the backend. Cached random
	// reads cost no disk access: they are reported as CacheHits instead of
	// RandReads in IOStats and QueryStats.
	CacheBlocks int
	// BlockSize is the disk block size in bytes (default 100 KB, the
	// paper's B).
	BlockSize int
	// SortMemElements bounds the memory used when sorting a batch; larger
	// batches use external sort (default 1M elements).
	SortMemElements int
	// NoSpill disables writing the raw batch to disk before sorting in the
	// synchronous maintenance mode. The paper's loading paradigm spills
	// (the "load" phase of Figure 6); disable only in tests. Deferred
	// maintenance modes always spill — the spill is the sealed step's
	// durable form.
	NoSpill bool
	// NoBlockPin disables the §2.4 optimization that pins a partition's
	// final block in memory during a query.
	NoBlockPin bool
	// ParallelQuery probes all partitions concurrently during accurate
	// queries — the paper's §4 future-work parallelization. Worthwhile when
	// the store holds many partitions on hardware with parallel read paths.
	ParallelQuery bool
	// MergeWorkers > 1 parallelizes level merges across value ranges (§4
	// future work). Costs one extra sequential pass over merged data.
	MergeWorkers int
	// ProbeMemoEntries bounds the per-snapshot rank-probe memo: each
	// immutable store version caches up to this many bisection probes, so a
	// repeated query against an unchanged snapshot (the dashboard re-poll
	// pattern) resolves without touching the store at all — hits are
	// reported as QueryStats.MemoHits. Entries never go stale: they die
	// with their version. 0 selects the default (4096); negative disables
	// memoization.
	ProbeMemoEntries int
	// SimulateDisk injects per-block latency so wall-clock timings track
	// I/O counts even when the OS page cache hides the real device:
	// "" (off, default), "hdd" (the paper's ~1 ms random access) or "ssd".
	SimulateDisk string
	// BlockFormat selects how partition files are laid out on disk:
	// "columnar" (the default — delta-compressed blocks with min/max headers
	// that enable block skipping during accurate queries) or "raw" (plain
	// little-endian int64 frames, the original format). Files written in
	// either format are always readable regardless of this setting; it only
	// governs new files. An empty value falls back to the HSQ_BLOCK_FORMAT
	// environment variable, then to "columnar".
	BlockFormat string

	// Maintenance selects who runs the heavy half of EndStep (sort, level-0
	// install, κ-way merges): "sync" (inline, the default), "async" (the
	// DB-wide background scheduler) or "manual" (deferred until
	// SyncMaintenance). See the package docs' "Concurrency model".
	Maintenance string
	// MaxPendingSteps bounds how many sealed steps may await background
	// installation per stream before EndStep blocks (backpressure). Setting
	// it > 0 with Maintenance unset selects "async"; in async mode 0 means
	// the default bound (4).
	MaxPendingSteps int
	// MaintenanceWorkers sizes the async scheduler's worker pool, shared by
	// all streams of a DB (default 2).
	MaintenanceWorkers int

	// MaxHydratedStreams bounds how many of a DB's registered streams may
	// hold a hydrated (memory-resident) engine at once; 0 means unlimited.
	// Streams beyond the bound are sealed — maintenance drained, manifest
	// durably committed — and evicted in least-recently-used order, then
	// rehydrated transparently on their next touch. The bound is a target,
	// not a hard cap: streams that cannot be sealed without losing state
	// (an in-flight operation, a non-empty observe buffer, a sealed
	// maintenance backlog still draining) stay resident until they quiesce.
	// Standalone engines (New/OpenEngine) ignore this knob.
	MaxHydratedStreams int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	// Epsilon/Kappa ranges are validated by the same predicates the
	// partition store applies to its derived parameters — one source of
	// truth for both layers (internal/partition/validate.go).
	if err := partition.ValidateEpsilon(out.Epsilon); err != nil {
		return out, fmt.Errorf("hsq: %w", err)
	}
	if out.Kappa == 0 {
		out.Kappa = 10
	}
	if err := partition.ValidateKappa(out.Kappa); err != nil {
		return out, fmt.Errorf("hsq: %w", err)
	}
	if out.Device == nil && out.Dir == "" && (out.Backend == "" || out.Backend == "file") {
		return out, fmt.Errorf("hsq: Dir is required for the file backend")
	}
	if out.CacheBlocks < 0 {
		return out, fmt.Errorf("hsq: CacheBlocks must be >= 0, got %d", out.CacheBlocks)
	}
	if out.BlockSize == 0 {
		out.BlockSize = disk.DefaultBlockSize
	}
	if out.SortMemElements == 0 {
		out.SortMemElements = 1 << 20
	}
	if out.ProbeMemoEntries == 0 {
		out.ProbeMemoEntries = 4096
	}
	if out.BlockFormat == "" {
		out.BlockFormat = os.Getenv("HSQ_BLOCK_FORMAT")
	}
	if out.BlockFormat == "" {
		out.BlockFormat = "columnar"
	}
	if _, err := disk.ParseBlockFormat(out.BlockFormat); err != nil {
		return out, fmt.Errorf("hsq: %w", err)
	}
	switch out.Maintenance {
	case "":
		if out.MaxPendingSteps > 0 {
			out.Maintenance = MaintenanceAsync
		} else {
			out.Maintenance = MaintenanceSync
		}
	case MaintenanceSync, MaintenanceAsync, MaintenanceManual:
	default:
		return out, fmt.Errorf("hsq: unknown Maintenance mode %q (want %q, %q or %q)",
			out.Maintenance, MaintenanceSync, MaintenanceAsync, MaintenanceManual)
	}
	if out.MaxPendingSteps < 0 {
		return out, fmt.Errorf("hsq: MaxPendingSteps must be >= 0, got %d", out.MaxPendingSteps)
	}
	if out.Maintenance == MaintenanceAsync && out.MaxPendingSteps == 0 {
		out.MaxPendingSteps = 4
	}
	if out.MaintenanceWorkers <= 0 {
		out.MaintenanceWorkers = 2
	}
	if out.MaxHydratedStreams < 0 {
		return out, fmt.Errorf("hsq: MaxHydratedStreams must be >= 0, got %d", out.MaxHydratedStreams)
	}
	return out, nil
}

// mode returns the resolved maintenance mode. Call after withDefaults.
func (c Config) mode() maintMode {
	switch c.Maintenance {
	case MaintenanceAsync:
		return maintAsync
	case MaintenanceManual:
		return maintManual
	default:
		return maintSync
	}
}

// IOStats mirrors the block-level I/O counters of the warehouse device.
// RandReads counts only reads that reached the storage backend; random
// probes absorbed by the block cache appear as CacheHits.
type IOStats struct {
	SeqReads    uint64
	SeqWrites   uint64
	RandReads   uint64
	CacheHits   uint64
	CacheMisses uint64
	// SkippedBlocks counts bisection steps answered from columnar block
	// headers with no block access at all. Not part of Total(): a skip is
	// the absence of an access.
	SkippedBlocks uint64
}

// Total returns the total number of block accesses.
func (s IOStats) Total() uint64 { return s.SeqReads + s.SeqWrites + s.RandReads }

// Sub returns the element-wise difference, with each counter clamped at
// zero (counters may have been reset between the two snapshots).
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{
		SeqReads:      subClamp(s.SeqReads, t.SeqReads),
		SeqWrites:     subClamp(s.SeqWrites, t.SeqWrites),
		RandReads:     subClamp(s.RandReads, t.RandReads),
		CacheHits:     subClamp(s.CacheHits, t.CacheHits),
		CacheMisses:   subClamp(s.CacheMisses, t.CacheMisses),
		SkippedBlocks: subClamp(s.SkippedBlocks, t.SkippedBlocks),
	}
}

func subClamp(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func fromDisk(d disk.Stats) IOStats {
	return IOStats{
		SeqReads:      d.SeqReads,
		SeqWrites:     d.SeqWrites,
		RandReads:     d.RandReads,
		CacheHits:     d.CacheHits,
		CacheMisses:   d.CacheMisses,
		SkippedBlocks: d.SkippedBlocks,
	}
}

// UpdateStats reports the cost of one EndStep, split into the paper's four
// phases (Figure 6): loading the raw batch, sorting it into a level-0
// partition, merging overflowing levels, and summary maintenance. With
// deferred maintenance (async/manual) EndStep performs only the load (the
// durable seal); the sort and merge phases run in the background and are
// accounted in MaintenanceStats instead.
type UpdateStats struct {
	Load, Sort, Merge, Summary time.Duration
	LoadIO, SortIO, MergeIO    IOStats
	Merges                     int
	BatchSize                  int64
}

// TotalTime returns the total update time.
func (u UpdateStats) TotalTime() time.Duration { return u.Load + u.Sort + u.Merge + u.Summary }

// TotalIO returns the total block accesses of the update.
func (u UpdateStats) TotalIO() uint64 {
	return u.LoadIO.Total() + u.SortIO.Total() + u.MergeIO.Total()
}

// QueryStats reports the cost of one accurate query.
type QueryStats struct {
	// Iterations is the number of value-space bisection probes.
	Iterations int
	// RandReads is the number of random block reads that reached the
	// storage backend.
	RandReads int
	// CacheHits is the number of block probes served by the block cache,
	// costing no disk access.
	CacheHits int
	// SkippedBlocks is the number of bisection steps resolved from columnar
	// block-header min/max bounds without touching the block at all.
	SkippedBlocks int
	// MemoHits is the number of bisection probes resolved from the pinned
	// snapshot's rank-probe memo with zero partition I/O (see
	// Config.ProbeMemoEntries). Like cache hits and skipped blocks, memo
	// hits spend no MaxReads budget — only reads that reach the storage
	// backend do.
	MemoHits int
	// FilterU and FilterV bracket the search (Algorithm 7 output).
	FilterU, FilterV int64
	// Elapsed is the wall-clock query time.
	Elapsed time.Duration
	// Truncated reports that a MaxReads budget stopped the search early.
	Truncated bool
}

// QueryOpts tunes one accurate query beyond the engine defaults.
type QueryOpts struct {
	// MaxReads caps random block reads for this query; 0 means unlimited.
	// When the cap is hit the search stops early and returns its best
	// current answer with QueryStats.Truncated set — trading accuracy for
	// disk accesses, the third axis of the paper's concluding tradeoff
	// discussion. Only reads that actually reach the storage backend spend
	// the budget: block-cache hits, skipped blocks and probe-memo hits are
	// the absence of an access and are always free.
	MaxReads int
}

// MemoryUsage breaks down the engine's summary memory (Observation 1).
type MemoryUsage struct {
	// HistBytes is the historical summary HS (Lemma 8).
	HistBytes int64
	// StreamBytes is the live GK sketch (Lemma 9).
	StreamBytes int64
	// StreamPeakBytes is the GK sketch's high-water mark this time step.
	StreamPeakBytes int64
	// PendingBytes buffers sealed-but-uninstalled batches awaiting
	// background maintenance (raw data plus frozen summaries); bounded by
	// MaxPendingSteps batches, zero with synchronous maintenance.
	PendingBytes int64
}

// Total returns the combined live footprint.
func (m MemoryUsage) Total() int64 { return m.HistBytes + m.StreamBytes + m.PendingBytes }

// Engine answers quantile queries over the union of a historical warehouse
// and the current stream. It is safe for concurrent use.
//
// Reads are snapshot-isolated: a query briefly takes the engine lock to pin
// an immutable store version plus the frozen summaries of any
// sealed-but-uninstalled steps, then runs its disk probes entirely outside
// the lock — so queries proceed while background maintenance sorts and
// merges behind them, and an in-flight query keeps the partition files of
// its pinned version alive until it finishes. See the package docs'
// "Concurrency model" for the full locking contract.
//
// An Engine is the single-stream core of the package: the multi-stream DB
// hosts one Engine per named stream (wrapped in a Stream) over namespaced
// views of one shared device, while New and OpenEngine build a standalone
// Engine owning its whole device — the original single-tenant shape.
type Engine struct {
	cfg   Config
	mode  maintMode
	eps1  float64
	eps2  float64
	dev   *disk.Manager
	store *partition.Store
	sched *scheduler // async mode; shared across a DB's streams

	// loadMu serializes the write path's step logic (EndStep seals, Close,
	// Destroy) without blocking observes or queries.
	loadMu sync.Mutex
	// maintMu serializes store build mutations — deferred installs and
	// merges. Lock order: loadMu > maintMu > mu.
	maintMu sync.Mutex

	// mu guards the fast in-memory state below. Queries hold it only long
	// enough to pin a snapshot.
	mu       sync.RWMutex
	sketch   *gk.Sketch
	batch    []int64
	sealed   []*sealedPiece
	step     int
	closed   bool
	maintErr error
	wake     chan struct{}
	mstats   maintAccum

	// ownsDev marks standalone engines whose Close releases the backend;
	// DB-hosted engines share the device, which the DB releases once.
	// ownsSched likewise marks a standalone async engine owning its worker
	// pool.
	ownsDev   bool
	ownsSched bool
}

// newDevice builds the warehouse block device described by cfg: backend,
// block size, block cache and simulated latency profile.
func newDevice(cfg Config) (*disk.Manager, error) {
	b := cfg.Device
	if b == nil {
		var err error
		b, err = disk.OpenBackend(cfg.Backend, cfg.Dir)
		if err != nil {
			return nil, err
		}
	}
	dev, err := disk.NewManagerOn(b, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	if cfg.CacheBlocks > 0 {
		dev.SetCache(cfg.CacheBlocks)
	}
	format, err := disk.ParseBlockFormat(cfg.BlockFormat)
	if err != nil {
		return nil, fmt.Errorf("hsq: %w", err)
	}
	if err := dev.SetBlockFormat(format); err != nil {
		return nil, fmt.Errorf("hsq: %w", err)
	}
	if err := applyDiskProfile(dev, cfg.SimulateDisk); err != nil {
		return nil, err
	}
	return dev, nil
}

// storeConfig derives the partition-store configuration from an engine
// config — the one place every knob is forwarded, shared by fresh and
// resumed stores so they cannot drift apart.
func storeConfig(cfg Config, eps1 float64, namespace string) partition.Config {
	return partition.Config{
		Kappa:            cfg.Kappa,
		Eps1:             eps1,
		SortMemElements:  cfg.SortMemElements,
		SpillBatches:     !cfg.NoSpill,
		MergeWorkers:     cfg.MergeWorkers,
		ProbeMemoEntries: cfg.ProbeMemoEntries,
		Namespace:        namespace,
	}
}

// newEngineOn builds (or, with resume, reopens) an engine core over an
// already-constructed device view. full must have passed withDefaults.
// namespace identifies the stream when the view is namespaced ("" for
// standalone engines on a root view). Steps that were sealed but not
// installed when the previous process died are re-installed synchronously
// before the engine is returned, so a reopened engine always serves its
// full recovered prefix from partitions.
func newEngineOn(dev *disk.Manager, full Config, namespace string, resume bool) (*Engine, error) {
	eps1 := full.Epsilon / 2
	eps2 := full.Epsilon / 4
	pcfg := storeConfig(full, eps1, namespace)
	var (
		store *partition.Store
		err   error
	)
	if resume {
		store, err = partition.LoadStore(dev, manifestName, pcfg)
	} else {
		store, err = partition.NewStore(dev, pcfg)
		if err == nil && namespace != "" {
			// A DB-hosted stream opening fresh may still find debris from a
			// crash before its first durable commit (the stream was in the
			// DB directory but never wrote a manifest). Nothing is
			// referenced yet, so everything matching the store's file
			// patterns is an orphan.
			if _, gcErr := partition.CollectOrphans(dev, nil); gcErr != nil {
				return nil, gcErr
			}
		}
	}
	if err != nil {
		return nil, err
	}
	// The GK sketch runs at ε₂/2 so the extracted stream summary satisfies
	// Lemma 1's one-sided band; see internal/gk.
	sketch, err := gk.New(eps2 / 2)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg: full, mode: full.mode(), eps1: eps1, eps2: eps2,
		dev: dev, store: store, sketch: sketch,
		wake: make(chan struct{}),
	}
	e.step = store.Steps()
	if resume {
		// Fold sealed-but-uninstalled steps from the recovered manifest back
		// into partitions before serving: their frozen summaries died with
		// the old process, so the spills are the only queryable form.
		for store.PendingSteps() > 0 {
			if _, _, err := store.InstallOne(manifestName); err != nil {
				return nil, fmt.Errorf("hsq: recover sealed step: %w", err)
			}
		}
	}
	return e, nil
}

// New creates an engine over the configured backend (rooted at cfg.Dir for
// the default file backend).
func New(cfg Config) (*Engine, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	dev, err := newDevice(full)
	if err != nil {
		return nil, err
	}
	e, err := newEngineOn(dev, full, "", false)
	if err != nil {
		return nil, err
	}
	e.ownsDev = true
	e.attachOwnScheduler()
	return e, nil
}

// attachOwnScheduler gives a standalone async engine its own worker pool.
func (e *Engine) attachOwnScheduler() {
	if e.mode == maintAsync && e.sched == nil {
		e.sched = newScheduler(e.cfg.MaintenanceWorkers)
		e.ownsSched = true
	}
}

// Epsilon returns the engine's approximation parameter.
func (e *Engine) Epsilon() float64 { return e.cfg.Epsilon }

// Kappa returns the merge threshold.
func (e *Engine) Kappa() int { return e.cfg.Kappa }

// Observe feeds one stream element (StreamUpdate, Algorithm 4). The element
// is both summarized in the GK sketch and buffered for end-of-step loading.
// On a closed engine Observe is a no-op (the signature predates Close and
// cannot report an error); producers that need the failure signal should
// use ObserveCtx, which returns ErrClosed.
func (e *Engine) Observe(v int64) {
	e.observe(v) //nolint:errcheck // ErrClosed intentionally dropped, see doc
}

// ObserveSlice feeds a slice of stream elements under one lock acquisition.
// Like Observe, it is a no-op on a closed engine; ObserveSliceCtx reports
// ErrClosed instead.
func (e *Engine) ObserveSlice(vs []int64) {
	e.observeSlice(vs) //nolint:errcheck // ErrClosed intentionally dropped, see doc
}

func (e *Engine) observe(v int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.sketch.Insert(v)
	e.batch = append(e.batch, v)
	return nil
}

func (e *Engine) observeSlice(vs []int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for _, v := range vs {
		e.sketch.Insert(v)
	}
	e.batch = append(e.batch, vs...)
	return nil
}

// StreamCount returns m, the number of elements in the current (unloaded)
// stream.
func (e *Engine) StreamCount() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sketch.Count()
}

// HistCount returns n, the number of elements in the warehouse — installed
// partitions plus steps sealed by EndStep and awaiting background
// installation.
func (e *Engine) HistCount() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.TotalCount()
}

// TotalCount returns N = n + m.
func (e *Engine) TotalCount() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.store.TotalCount() + e.sketch.Count()
}

// Steps returns the number of completed time steps.
func (e *Engine) Steps() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.step
}

// PartitionCount returns the number of live partitions in HD.
func (e *Engine) PartitionCount() int {
	return e.store.PartitionCount()
}

// EndStep closes the current time step (Algorithm 4, StreamReset): the
// buffered batch becomes part of the warehouse and the stream sketch is
// reset. An empty stream is a no-op.
//
// With synchronous maintenance (the default) the batch is loaded inline —
// sorted into a level-0 partition, with level merges as needed — and the
// new warehouse state durably committed before EndStep returns, exactly the
// original behavior: the commit orders write-data → sync → commit-manifest
// → sync, so when EndStep returns nil the step survives any crash, and a
// reopened engine recovers exactly the prefix of time steps whose EndStep
// completed. If the commit itself fails, the batch is already installed in
// memory, the error is surfaced, and the next successful EndStep or
// Checkpoint re-commits the full state.
//
// With deferred maintenance (async/manual) EndStep only seals the step:
// the batch and sketch are cut atomically, the raw batch is spilled and a
// manifest referencing it durably committed — the same recovery guarantee,
// at the cost of one sequential write of the batch — while the sort,
// install and merges run in the background. Queries cover sealed steps
// through their frozen summaries, so answers always span the full observed
// history. In async mode EndStep blocks when MaxPendingSteps seals await
// installation (backpressure); EndStepCtx aborts the wait on cancellation.
func (e *Engine) EndStep() (UpdateStats, error) {
	return e.endStep(context.Background())
}

func (e *Engine) endStep(ctx context.Context) (UpdateStats, error) {
	if e.mode == maintSync {
		return e.endStepSync()
	}
	return e.endStepDeferred(ctx)
}

// endStepSync is the original inline install under the write lock.
func (e *Engine) endStepSync() (UpdateStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return UpdateStats{}, ErrClosed
	}
	if len(e.batch) == 0 {
		return UpdateStats{}, nil
	}
	bd, err := e.store.AddBatch(e.batch, e.step+1)
	if err != nil && !errors.Is(err, partition.ErrMergeIncomplete) {
		// The batch never installed: keep it (and the sketch) for a retry.
		return UpdateStats{}, fmt.Errorf("hsq: end step %d: %w", e.step+1, err)
	}
	us := UpdateStats{
		Load: bd.Load, Sort: bd.Sort, Merge: bd.Merge, Summary: bd.Summary,
		LoadIO: fromDisk(bd.LoadIO), SortIO: fromDisk(bd.SortIO), MergeIO: fromDisk(bd.MergeIO),
		Merges:    bd.Merges,
		BatchSize: int64(len(e.batch)),
	}
	e.step++
	e.batch = e.batch[:0]
	e.sketch.Reset()
	if err != nil {
		// The step is installed and counted; only the cascade is unfinished
		// (retried by the next update). Surface it without re-loading the
		// batch — retrying would double-install the data.
		return us, fmt.Errorf("hsq: end step %d: %w", e.step, err)
	}
	if err := e.store.Commit(manifestName); err != nil {
		return us, fmt.Errorf("hsq: commit step %d: %w", e.step, err)
	}
	return us, nil
}

// endStepDeferred seals the step and hands the install to maintenance.
func (e *Engine) endStepDeferred(ctx context.Context) (UpdateStats, error) {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	// Backpressure is enforced while holding the seal lock: concurrent
	// EndStep callers serialize here and each re-validates the bound, so
	// the sealed backlog can never exceed MaxPendingSteps. Installs need no
	// engine lock we hold, so the wait always resolves (or surfaces the
	// maintenance error / cancellation).
	if err := e.waitBackpressure(ctx); err != nil {
		return UpdateStats{}, err
	}

	// Cut the step atomically: the batch, its sketch summary and the step
	// counter move together, so elements observed from here on belong to
	// the next step and queries never double-count.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return UpdateStats{}, ErrClosed
	}
	if err := e.maintErr; err != nil {
		e.mu.Unlock()
		return UpdateStats{}, maintFailed(err)
	}
	if len(e.batch) == 0 {
		e.mu.Unlock()
		return UpdateStats{}, nil
	}
	data := e.batch
	e.batch = nil
	count := e.sketch.Count()
	ss := core.StreamSummary(e.sketch, e.eps2)
	e.sketch.Reset()
	e.step++
	step := e.step
	e.sealed = append(e.sealed, &sealedPiece{step: step, count: count, ss: ss})
	e.mu.Unlock()

	t0 := time.Now()
	io0 := e.dev.Stats()
	maint0 := e.dev.MaintStats()
	sealedStep, err := e.store.Seal(data, manifestName)
	// Isolate the seal's own I/O: background installs on the same view are
	// maintenance-tagged (subtracted), and concurrent query reads are
	// excluded by keeping only the write counters — a seal is one
	// sequential spill plus the commit.
	loadIO := fromDisk(e.dev.Stats().Sub(io0).Sub(e.dev.MaintStats().Sub(maint0)))
	loadIO.SeqReads, loadIO.RandReads, loadIO.CacheHits, loadIO.CacheMisses = 0, 0, 0, 0
	us := UpdateStats{
		Load:      time.Since(t0),
		LoadIO:    loadIO,
		BatchSize: int64(len(data)),
	}
	if err == nil && sealedStep != step {
		err = fmt.Errorf("engine at step %d but store sealed step %d", step, sealedStep)
	}
	if e.mode == maintAsync {
		e.sched.enqueue(e)
	}
	if err != nil {
		// The step exists in memory and will still be installed; only its
		// durability is deferred (the next Commit retries the spill), the
		// same contract as a failed synchronous commit.
		return us, fmt.Errorf("hsq: seal step %d: %w", step, err)
	}
	return us, nil
}

// waitBackpressure blocks while the stream's sealed backlog is at the
// MaxPendingSteps bound, waking on maintenance progress. ctx aborts the
// wait.
func (e *Engine) waitBackpressure(ctx context.Context) error {
	if e.mode != maintAsync {
		return nil
	}
	max := e.cfg.MaxPendingSteps
	waited := false
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return ErrClosed
		}
		if err := e.maintErr; err != nil {
			e.mu.Unlock()
			return maintFailed(err)
		}
		if len(e.sealed) < max {
			e.mu.Unlock()
			return nil
		}
		ch := e.wake
		if !waited {
			// One blocked EndStep counts once, however many wakeups it takes.
			e.mstats.bpWaits++
			waited = true
		}
		e.mu.Unlock()
		e.sched.enqueue(e)
		t0 := time.Now()
		select {
		case <-ch:
		case <-ctx.Done():
			e.addBackpressureTime(time.Since(t0))
			return ctx.Err()
		}
		e.addBackpressureTime(time.Since(t0))
	}
}

func (e *Engine) addBackpressureTime(d time.Duration) {
	e.mu.Lock()
	e.mstats.bpTime += d
	e.mu.Unlock()
}

// applyDiskProfile installs a simulated latency profile on the device.
func applyDiskProfile(dev *disk.Manager, profile string) error {
	switch profile {
	case "":
		return nil
	case "hdd":
		dev.SetLatency(disk.HDD)
	case "ssd":
		dev.SetLatency(disk.SSD)
	default:
		return fmt.Errorf("hsq: unknown disk profile %q (want \"\", \"hdd\" or \"ssd\")", profile)
	}
	return nil
}

// rankTarget converts a quantile fraction to a rank, clamped to [1, N].
func rankTarget(phi float64, n int64) (int64, error) {
	if phi <= 0 || phi > 1 {
		return 0, fmt.Errorf("hsq: phi must be in (0,1], got %g", phi)
	}
	r := int64(math.Ceil(phi * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r, nil
}

// querySnap is one snapshot-isolated view of the engine: an immutable,
// pinned store version plus the memory-resident stream pieces (frozen
// summaries of sealed steps awaiting installation, then the live sketch's
// summary). Everything a query reads after the snapshot is immutable, so
// the whole disk search runs without any engine lock; release returns the
// pin so reclaimed partitions can be deleted.
type querySnap struct {
	ver    *partition.Version
	sums   []*partition.Summary
	pieces []core.StreamPiece
	sealed int   // number of sealed (pending-install) pieces, oldest first
	m      int64 // live stream count
	n      int64 // grand total across version, sealed pieces and stream
}

func (s *querySnap) release() { s.ver.Release() }

// snapshot pins the engine's current state for one query. The engine lock
// is held only for the pin and the sketch-summary extraction.
func (e *Engine) snapshot() (*querySnap, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	s := &querySnap{ver: e.store.Pin()}
	s.sums = s.ver.Entries()
	s.n = s.ver.TotalCount()
	s.pieces = make([]core.StreamPiece, 0, len(e.sealed)+1)
	// Only pieces the pinned version has not installed yet: an install
	// publishes its version before the engine retires the frozen summary,
	// and filtering on the version's own step count keeps the snapshot
	// exact under every interleaving — a step is covered by its partition
	// or its frozen summary, never both.
	installed := s.ver.InstalledSteps()
	for _, p := range e.sealed {
		if p.step <= installed {
			continue
		}
		s.pieces = append(s.pieces, core.StreamPiece{SS: p.ss, M: p.count})
		s.n += p.count
	}
	s.sealed = len(s.pieces)
	s.m = e.sketch.Count()
	if s.m > 0 {
		s.pieces = append(s.pieces, core.StreamPiece{SS: core.StreamSummary(e.sketch, e.eps2), M: s.m})
		s.n += s.m
	}
	return s, nil
}

// accurate runs the bisection query over a snapshot subset. memo, when
// non-nil, must be the rank-probe memo of the version whose FULL entry set
// sums is — full-history queries pass the pinned version's memo, windowed
// queries (a partition subset) pass nil.
func (e *Engine) accurate(sums []*partition.Summary, pieces []core.StreamPiece, memo *partition.ProbeMemo, r int64, opts QueryOpts, interrupt func() error) (int64, QueryStats, error) {
	vs, stats, err := e.accurateMulti(sums, pieces, memo, []int64{r}, opts, interrupt)
	if err != nil {
		return 0, QueryStats{}, err
	}
	return vs[0], stats, nil
}

// accurateMulti runs one shared bisection sweep resolving every rank target
// together (see core.AccurateMultiQueryOpts); memo as in accurate.
func (e *Engine) accurateMulti(sums []*partition.Summary, pieces []core.StreamPiece, memo *partition.ProbeMemo, rs []int64, opts QueryOpts, interrupt func() error) ([]int64, QueryStats, error) {
	t0 := time.Now()
	c := core.BuildPieces(sums, pieces, e.eps1, e.eps2)
	vs, cost, err := core.AccurateMultiQueryOpts(c, e.cfg.Epsilon, rs, core.QueryOptions{
		PinBlocks: !e.cfg.NoBlockPin,
		Parallel:  e.cfg.ParallelQuery,
		MaxReads:  opts.MaxReads,
		Interrupt: interrupt,
		Memo:      memo,
	})
	if err != nil {
		return nil, QueryStats{}, err
	}
	return vs, QueryStats{
		Iterations:    cost.Iterations,
		RandReads:     cost.RandReads,
		CacheHits:     cost.CacheHits,
		SkippedBlocks: cost.SkippedBlocks,
		MemoHits:      cost.MemoHits,
		FilterU:       cost.FilterU,
		FilterV:       cost.FilterV,
		Elapsed:       time.Since(t0),
		Truncated:     cost.Truncated,
	}, nil
}

// Quantile answers an accurate φ-quantile query over T = H ∪ R with rank
// error ≤ ε·m (Algorithm 6 / Theorem 2), using a small number of random
// disk reads. (With a deferred-maintenance backlog, sealed steps count
// toward the stream side of the bound until their installs complete.)
func (e *Engine) Quantile(phi float64) (int64, QueryStats, error) {
	return e.QuantileOpts(phi, QueryOpts{})
}

// RankQuery answers an accurate query for the element of rank r in T.
func (e *Engine) RankQuery(r int64) (int64, QueryStats, error) {
	return e.rankQuery(r, nil)
}

func (e *Engine) rankQuery(r int64, interrupt func() error) (int64, QueryStats, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer s.release()
	if s.n == 0 {
		return 0, QueryStats{}, fmt.Errorf("hsq: query on empty dataset")
	}
	return e.accurate(s.sums, s.pieces, s.ver.Memo(), r, QueryOpts{}, interrupt)
}

// QuantileOpts answers an accurate φ-quantile with per-query options (e.g.
// an I/O budget).
func (e *Engine) QuantileOpts(phi float64, opts QueryOpts) (int64, QueryStats, error) {
	return e.quantileOpts(phi, opts, nil)
}

func (e *Engine) quantileOpts(phi float64, opts QueryOpts, interrupt func() error) (int64, QueryStats, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer s.release()
	r, err := rankTarget(phi, s.n)
	if err != nil {
		return 0, QueryStats{}, err
	}
	if s.n == 0 {
		return 0, QueryStats{}, fmt.Errorf("hsq: query on empty dataset")
	}
	return e.accurate(s.sums, s.pieces, s.ver.Memo(), r, opts, interrupt)
}

// QuantileQuick answers a φ-quantile query from in-memory summaries only
// (Algorithm 5), with rank error ≤ 1.5·ε·N (Lemma 3) and zero disk reads.
func (e *Engine) QuantileQuick(phi float64) (int64, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, err
	}
	defer s.release()
	r, err := rankTarget(phi, s.n)
	if err != nil {
		return 0, err
	}
	return e.quick(s, r)
}

// RankQueryQuick answers a rank query from in-memory summaries only.
func (e *Engine) RankQueryQuick(r int64) (int64, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, err
	}
	defer s.release()
	return e.quick(s, r)
}

func (e *Engine) quick(s *querySnap, r int64) (int64, error) {
	return e.quickOver(s.sums, s.pieces, s.n, r)
}

// quickOver is the in-memory-only query core shared by the full-history
// and windowed quick paths.
func (e *Engine) quickOver(sums []*partition.Summary, pieces []core.StreamPiece, n, r int64) (int64, error) {
	if n == 0 {
		return 0, fmt.Errorf("hsq: query on empty dataset")
	}
	c := core.BuildPieces(sums, pieces, e.eps1, e.eps2)
	return c.QuickQuery(r)
}

// AvailableWindows returns the historical window sizes (in time steps) that
// align with partition boundaries; windowed queries also include the
// current stream (paper §2.4, "Queries Over Windows"). Steps sealed but not
// yet installed by background maintenance are the newest windows (each
// sealed step extends every window by one and adds a window of its own).
func (e *Engine) AvailableWindows() []int {
	s, err := e.snapshot()
	if err != nil {
		return nil
	}
	defer s.release()
	var out []int
	for k := 1; k <= s.sealed; k++ {
		out = append(out, k)
	}
	for _, w := range s.ver.AvailableWindows() {
		out = append(out, w+s.sealed)
	}
	return out
}

// window selects the snapshot subset covering the most recent `steps`
// historical time steps: the newest sealed pieces first, then whole
// partitions. The live stream piece is always included.
func (s *querySnap) window(steps int) ([]*partition.Summary, []core.StreamPiece, int64, error) {
	if steps <= 0 {
		return nil, nil, 0, fmt.Errorf("hsq: window must be positive, got %d", steps)
	}
	live := s.pieces[s.sealed:] // the live stream piece, if any
	n := s.m
	if steps <= s.sealed {
		pieces := make([]core.StreamPiece, 0, steps+1)
		for _, p := range s.pieces[s.sealed-steps : s.sealed] {
			pieces = append(pieces, p)
			n += p.M
		}
		pieces = append(pieces, live...)
		return nil, pieces, n, nil
	}
	sums, err := s.ver.WindowEntries(steps - s.sealed)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, sum := range sums {
		n += sum.Part.Count
	}
	for _, p := range s.pieces[:s.sealed] {
		n += p.M
	}
	return sums, s.pieces, n, nil
}

// WindowQuantile answers an accurate φ-quantile over the union of the
// current stream and the most recent `steps` historical time steps. The
// window must be one of AvailableWindows.
func (e *Engine) WindowQuantile(phi float64, steps int) (int64, QueryStats, error) {
	return e.windowQuantile(phi, steps, nil)
}

func (e *Engine) windowQuantile(phi float64, steps int, interrupt func() error) (int64, QueryStats, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer s.release()
	sums, pieces, n, err := s.window(steps)
	if err != nil {
		return 0, QueryStats{}, err
	}
	r, err := rankTarget(phi, n)
	if err != nil {
		return 0, QueryStats{}, err
	}
	if n == 0 {
		return 0, QueryStats{}, fmt.Errorf("hsq: query on empty dataset")
	}
	// Windowed queries probe a partition subset, so the version memo (keyed
	// by full-history ranks) does not apply.
	return e.accurate(sums, pieces, nil, r, QueryOpts{}, interrupt)
}

// WindowQuantileQuick is the in-memory-only windowed query.
func (e *Engine) WindowQuantileQuick(phi float64, steps int) (int64, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, err
	}
	defer s.release()
	sums, pieces, n, err := s.window(steps)
	if err != nil {
		return 0, err
	}
	r, err := rankTarget(phi, n)
	if err != nil {
		return 0, err
	}
	return e.quickOver(sums, pieces, n, r)
}

// MemoryUsage returns the current summary footprint (Observation 1).
func (e *Engine) MemoryUsage() MemoryUsage {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var pendingBytes int64
	for _, p := range e.sealed {
		pendingBytes += int64(len(p.ss)) * 8
	}
	pendingBytes += e.store.PendingBytes()
	return MemoryUsage{
		HistBytes:       e.store.MemoryBytes(),
		StreamBytes:     e.sketch.MemoryBytes(),
		StreamPeakBytes: e.sketch.MaxMemoryBytes(),
		PendingBytes:    pendingBytes,
	}
}

// DiskStats returns cumulative block-level I/O counters for the warehouse
// device.
func (e *Engine) DiskStats() IOStats {
	return fromDisk(e.dev.Stats())
}

// ProbeMemoStats reports cumulative rank-probe memo counters (see
// Config.ProbeMemoEntries): hits, misses, stores and evictions across every
// store version so far, plus the current version's occupancy.
type ProbeMemoStats struct {
	// Hits counts bisection probes answered from the memo (zero I/O);
	// Misses counts memo lookups that fell through to the disk search.
	Hits, Misses uint64
	// Stores counts entry writes; Evictions counts entries dropped because
	// a version's memo was full.
	Stores, Evictions uint64
	// Entries is the current version's live entry count; Capacity its
	// bound. Both zero when memoization is disabled.
	Entries, Capacity int
}

// ProbeMemoStats returns the engine's rank-probe memo counters.
func (e *Engine) ProbeMemoStats() ProbeMemoStats {
	st := e.store.MemoStats()
	return ProbeMemoStats{
		Hits: st.Hits, Misses: st.Misses,
		Stores: st.Stores, Evictions: st.Evictions,
		Entries: st.Entries, Capacity: st.Capacity,
	}
}

// Checkpoint durably persists the warehouse layout so OpenEngine can
// resume after a restart. EndStep already commits every completed step
// (seals included), so Checkpoint is only needed to retry after a failed
// commit (or as an explicit barrier). The in-flight stream is volatile by
// design (it will be replayed or lost, exactly as a DSMS would); only
// historical state — including sealed steps awaiting installation — is
// durable. Checkpoint does not wait for background installs; use
// SyncMaintenance for a fully-merged quiescent state.
func (e *Engine) Checkpoint() error {
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return e.store.Commit(manifestName)
}

// OpenEngine resumes a standalone engine from a directory previously
// checkpointed with the same Epsilon and Kappa. Partition summaries are
// rebuilt with one sequential scan each; files left behind by a
// half-finished install — partitions written but never committed, sort
// temporaries — are garbage-collected, and steps that were sealed but not
// yet installed are re-installed from their spills. (It was named Open
// before the multi-stream redesign; Open now builds a DB.)
func OpenEngine(cfg Config) (*Engine, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	dev, err := newDevice(full)
	if err != nil {
		return nil, err
	}
	e, err := newEngineOn(dev, full, "", true)
	if err != nil {
		return nil, err
	}
	e.ownsDev = true
	e.attachOwnScheduler()
	return e, nil
}

// Close drains background maintenance, checkpoints the engine and releases
// it: sealed steps are installed and committed, the manifest is persisted,
// the engine transitions to a terminal state in which every subsequent
// mutation or query fails with ErrClosed, and — for standalone engines that
// own their device — the storage backend is released (closed, when the
// backend implements io.Closer). Close is idempotent.
//
// Destroy supersedes Close: a destroyed engine's on-disk state is gone, so
// there is nothing left to checkpoint and no need to call Close after it.
func (e *Engine) Close() error {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil
	}
	if err := e.SyncMaintenance(); err != nil {
		return err
	}
	if err := e.store.Commit(manifestName); err != nil {
		return err
	}
	e.mu.Lock()
	e.closed = true
	e.wakeLocked()
	e.mu.Unlock()
	// No new pins are possible past closed; wait out in-flight queries so
	// the backend is never torn down under their reads.
	e.store.DrainPins()
	if e.ownsSched {
		e.sched.close()
	}
	if e.ownsDev {
		if c, ok := e.dev.Backend().(io.Closer); ok {
			return c.Close()
		}
	}
	return nil
}

// Destroy removes all on-disk state, including spills of steps awaiting
// installation. The engine is unusable afterwards (it behaves as closed).
// Destroy supersedes Close — after Destroy there is no state left to
// checkpoint.
func (e *Engine) Destroy() error {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.mu.Lock()
	e.closed = true
	e.sealed = nil
	e.wakeLocked()
	e.mu.Unlock()
	// Queries that pinned a version before we closed may still be probing
	// partition files; wait them out before deleting anything.
	e.store.DrainPins()
	if err := e.store.Destroy(); err != nil {
		return err
	}
	if e.dev.Exists(manifestName) {
		if err := e.dev.Remove(manifestName); err != nil {
			return err
		}
	}
	if e.ownsSched {
		e.sched.close()
	}
	return nil
}

// Rank estimates the rank of an arbitrary value v within T = H ∪ R: the
// number of elements ≤ v. Installed partitions are counted exactly via
// per-partition binary search; the stream — and any sealed steps awaiting
// installation — contribute summary-based estimates, so the error is at
// most ~ε₂ times the stream-side mass. This is the inverse primitive of
// Quantile.
func (e *Engine) Rank(v int64) (int64, QueryStats, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, QueryStats{}, err
	}
	defer s.release()
	if s.n == 0 {
		return 0, QueryStats{}, fmt.Errorf("hsq: rank query on empty dataset")
	}
	t0 := time.Now()
	c := core.BuildPieces(s.sums, s.pieces, e.eps1, e.eps2)
	r, cost, err := core.RankOfValue(c, v, !e.cfg.NoBlockPin)
	if err != nil {
		return 0, QueryStats{}, err
	}
	return r, QueryStats{
		Iterations:    cost.Iterations,
		RandReads:     cost.RandReads,
		CacheHits:     cost.CacheHits,
		SkippedBlocks: cost.SkippedBlocks,
		Elapsed:       time.Since(t0),
	}, nil
}

// RankQuick estimates the rank of v from in-memory summaries only, with
// O(ε·N) error and zero disk reads.
func (e *Engine) RankQuick(v int64) (int64, error) {
	s, err := e.snapshot()
	if err != nil {
		return 0, err
	}
	defer s.release()
	if s.n == 0 {
		return 0, fmt.Errorf("hsq: rank query on empty dataset")
	}
	c := core.BuildPieces(s.sums, s.pieces, e.eps1, e.eps2)
	return c.QuickRank(v), nil
}

// Quantiles answers several accurate φ-quantile queries in one shot with a
// single shared bisection sweep: the combined summary is built once and
// every disk probe narrows all targets whose interval contains it, so k
// targets cost about log(filter range) + k probes instead of k separate
// bisections (the common "p50/p95/p99" dashboard pattern). Results are
// positionally aligned with phis; the stats aggregate the whole sweep.
func (e *Engine) Quantiles(phis []float64) ([]int64, QueryStats, error) {
	return e.quantilesOpts(phis, QueryOpts{}, nil)
}

// QuantilesOpts is Quantiles with per-call options. opts.MaxReads, when
// positive, is one total backend-read budget for the whole sweep; once it
// is exhausted, targets still unresolved are answered from in-memory
// summaries alone (zero disk reads, QuantileQuick accuracy) and the
// returned QueryStats.Truncated is set. As everywhere, cache hits, skipped
// blocks and memo hits spend no budget.
func (e *Engine) QuantilesOpts(phis []float64, opts QueryOpts) ([]int64, QueryStats, error) {
	return e.quantilesOpts(phis, opts, nil)
}

func (e *Engine) quantilesOpts(phis []float64, opts QueryOpts, interrupt func() error) ([]int64, QueryStats, error) {
	s, err := e.snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer s.release()
	if s.n == 0 {
		return nil, QueryStats{}, fmt.Errorf("hsq: query on empty dataset")
	}
	rs := make([]int64, len(phis))
	for i, phi := range phis {
		if rs[i], err = rankTarget(phi, s.n); err != nil {
			return nil, QueryStats{}, err
		}
	}
	return e.accurateMulti(s.sums, s.pieces, s.ver.Memo(), rs, opts, interrupt)
}

// LevelInfo describes one level of the on-disk store.
type LevelInfo struct {
	// Level is the level number (0 = freshest batches).
	Level int
	// Partitions is the number of live partitions at this level (≤ κ).
	Partitions int
	// Elements is the total element count across the level.
	Elements int64
	// Steps is the number of time steps the level covers.
	Steps int
}

// Describe returns the warehouse layout, one entry per level.
func (e *Engine) Describe() []LevelInfo {
	var out []LevelInfo
	for _, li := range e.store.Describe() {
		out = append(out, LevelInfo{Level: li.Level, Partitions: li.Partitions, Elements: li.Elements, Steps: li.Steps})
	}
	return out
}
