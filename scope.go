package hsq

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/query"
)

// ScopedSummary is Summary restricted to a query-layer step scope: a
// window of Scope.Window steps ending Scope.Back steps before the newest
// step (or at Scope.AsOf, the time-travel pin on the snapshot's immutable
// step prefix). The full-history zero scope is exactly Summary.
//
// Selection composes the two step-aligned sources of the snapshot:
// installed partitions are cut on partition boundaries
// (partition.Version.StepRangeEntries — background merges coarsen the
// available boundaries over time, so old AsOf cut points gradually
// disappear), and sealed-but-uninstalled steps are individually
// addressable pieces layered on top. The live unsealed buffer belongs to
// the current, incomplete step: it is included only in the newest scope
// (no Back shift, no AsOf pin).
func (e *Engine) ScopedSummary(sc query.Scope) (*core.ShardSummary, error) {
	if sc.Window < 0 || sc.Back < 0 || sc.AsOf < 0 {
		return nil, fmt.Errorf("hsq: invalid scope %+v", sc)
	}
	s, err := e.snapshot()
	if err != nil {
		return nil, err
	}
	defer s.release()
	sum := &core.ShardSummary{Eps1: e.eps1, Eps2: e.eps2}
	installed := s.ver.InstalledSteps()
	latest := installed + s.sealed
	end := latest
	includeLive := true
	if sc.AsOf > 0 {
		if sc.AsOf > latest {
			return nil, fmt.Errorf("hsq: as_of_step %d is beyond the newest sealed step %d", sc.AsOf, latest)
		}
		end = sc.AsOf
		includeLive = false
	}
	if sc.Back > 0 {
		end -= sc.Back
		includeLive = false
		if end < 0 {
			return nil, fmt.Errorf("hsq: window shifted %d steps back ends before the first step (newest is %d)", sc.Back, latest)
		}
	}
	start := 0
	if sc.Window > 0 {
		start = end - sc.Window
		if start < 0 {
			return nil, fmt.Errorf("hsq: window of %d steps ending at step %d extends before the first step", sc.Window, end)
		}
	}
	// Installed partitions covering (start, min(end, installed)].
	if histEnd := min(end, installed); histEnd > start {
		ents, err := s.ver.StepRangeEntries(start, histEnd)
		if err != nil {
			return nil, fmt.Errorf("hsq: %w", err)
		}
		sum.Parts = make([]core.PartSummary, 0, len(ents))
		for _, ps := range ents {
			sum.Parts = append(sum.Parts, core.PartSummary{Count: ps.Part.Count, Values: ps.Values})
			sum.N += ps.Part.Count
		}
	}
	// Sealed pieces: snapshot piece i covers step installed+1+i (the
	// snapshot keeps exactly the pieces the pinned version has not
	// installed, oldest first, and sealed steps are consecutive).
	for i := 0; i < s.sealed; i++ {
		step := installed + 1 + i
		if step > start && step <= end {
			sum.Pieces = append(sum.Pieces, s.pieces[i])
			sum.N += s.pieces[i].M
		}
	}
	if includeLive && s.m > 0 {
		sum.Pieces = append(sum.Pieces, s.pieces[s.sealed:]...)
		sum.N += s.m
	}
	return sum, nil
}

// sealedParts captures the engine's fully-installed summary state for the
// cold-summary sidecar: every installed partition's (count, values,
// step range) plus the covered step count. ok is false whenever the state
// goes beyond installed partitions — a live observe buffer or
// sealed-but-uninstalled steps — because the sidecar format represents
// exactly what survives an eviction (eviction requires both to be empty).
func (e *Engine) sealedParts() (parts []sidecarPart, steps int, total int64, ok bool) {
	s, err := e.snapshot()
	if err != nil {
		return nil, 0, 0, false
	}
	defer s.release()
	if s.m > 0 || s.sealed > 0 {
		return nil, 0, 0, false
	}
	for _, ps := range s.ver.ChronologicalEntries() {
		parts = append(parts, sidecarPart{
			Count:     ps.Part.Count,
			StartStep: ps.Part.StartStep,
			EndStep:   ps.Part.EndStep,
			Values:    ps.Values,
		})
		total += ps.Part.Count
	}
	return parts, s.ver.InstalledSteps(), total, true
}
