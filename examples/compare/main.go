// Compare: the paper's headline claim on one screen — at equal summary
// memory, the hybrid engine answers quantile queries on history+stream far
// more accurately than the best pure-streaming sketches (Greenwald-Khanna
// and Q-Digest), at the cost of a handful of random disk reads.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro"
	"repro/internal/gk"
	"repro/internal/oracle"
	"repro/internal/qdigest"
	"repro/internal/workload"
)

const (
	steps     = 40
	batchSize = 25_000
	streamLen = 25_000
	budget    = int64(48 << 10) // 48 KB of summary memory for every method
)

func main() {
	gen := workload.NewUniform(99)
	orc := oracle.New(steps*batchSize + streamLen)
	batches := make([][]int64, steps)
	for i := range batches {
		batches[i] = workload.Fill(gen, batchSize)
		orc.Add(batches[i]...)
	}
	stream := workload.Fill(gen, streamLen)
	orc.Add(stream...)
	n := float64(orc.Count())

	// --- hybrid engine, ε planned for the budget (half HS, half SS) ---
	dir, err := os.MkdirTemp("", "hsq-compare-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	eps, err := hsq.Plan(budget, streamLen, steps, 10)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := hsq.New(hsq.Config{Epsilon: eps, Kappa: 10, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range batches {
		eng.ObserveSlice(b)
		if _, err := eng.EndStep(); err != nil {
			log.Fatal(err)
		}
	}
	eng.ObserveSlice(stream)

	// --- pure-streaming competitors at the same budget ---
	// GK: 24 bytes/tuple; solve (1/2ε)·log₂(2εN) tuples = budget.
	gkEps := solveGKEps(budget, int64(n))
	gkSketch := gk.MustNew(gkEps)
	// Q-Digest: 48 bytes/node, bits/ε nodes.
	qdEps := 48 * float64(30) / float64(budget)
	qd := qdigest.MustNew(qdEps, 30)
	for _, b := range batches {
		for _, v := range b {
			gkSketch.Insert(v)
			if err := qd.Insert(v); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, v := range stream {
		gkSketch.Insert(v)
		if err := qd.Insert(v); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("dataset: %d historical + %d streaming elements (uniform)\n", steps*batchSize, streamLen)
	fmt.Printf("summary budget per method: %d KB\n\n", budget>>10)
	fmt.Println("phi    hybrid-accurate    hybrid-quick       GK                 QDigest")
	for _, phi := range []float64{0.25, 0.5, 0.9, 0.99} {
		av, qs, err := eng.Quantile(phi)
		if err != nil {
			log.Fatal(err)
		}
		qv, err := eng.QuantileQuick(phi)
		if err != nil {
			log.Fatal(err)
		}
		gv, _ := gkSketch.Quantile(phi)
		dv, _ := qd.Quantile(phi)
		fmt.Printf("%.2f   %-18s %-18s %-18s %-18s\n", phi,
			relErr(orc, phi, av)+fmt.Sprintf(" (%dIO)", qs.RandReads),
			relErr(orc, phi, qv), relErr(orc, phi, gv), relErr(orc, phi, dv))
	}
	mu := eng.MemoryUsage()
	fmt.Printf("\nactual memory — hybrid: %d B, GK: %d B, QDigest: %d B\n",
		mu.Total(), gkSketch.MaxMemoryBytes(), qd.MaxMemoryBytes())
	fmt.Println("(cells are relative error |r - rank(answer)| / (φN); lower is better)")
}

func relErr(orc *oracle.Oracle, phi float64, v int64) string {
	return fmt.Sprintf("%.2e", orc.RelativeError(phi, v))
}

func solveGKEps(budget, n int64) float64 {
	lo, hi := 1e-9, 0.5
	f := func(eps float64) float64 {
		t := (1 / (2 * eps)) * math.Max(1, math.Log2(math.Max(2, 2*eps*float64(n))))
		return 24*t - float64(budget)
	}
	if f(hi) > 0 {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if f(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
