// Quickstart: the minimal end-to-end use of the hsq engine — observe a
// stream, close time steps, and query quantiles over the union of
// historical and streaming data.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "hsq-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ε = 0.01: accurate queries err by at most 1% of the *stream* size —
	// a vanishing fraction of the total as history accumulates.
	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate 10 time steps of 50k elements each, then a partial stream.
	rng := rand.New(rand.NewSource(1))
	for step := 1; step <= 10; step++ {
		for i := 0; i < 50_000; i++ {
			eng.Observe(rng.Int63n(1_000_000))
		}
		us, err := eng.EndStep()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %2d: loaded %d elements in %v (%d block I/Os, %d merges)\n",
			step, us.BatchSize, us.TotalTime().Round(1e6), us.TotalIO(), us.Merges)
	}
	for i := 0; i < 20_000; i++ {
		eng.Observe(rng.Int63n(1_000_000))
	}

	fmt.Printf("\nhistory: %d elements, stream: %d elements\n", eng.HistCount(), eng.StreamCount())

	// Accurate queries: a few random disk reads, error ≤ ε·|stream| = 200
	// ranks out of 520k elements.
	for _, phi := range []float64{0.5, 0.95, 0.99} {
		v, qs, err := eng.Quantile(phi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%02.0f = %7d   (%d disk reads, %d probes, %v)\n",
			phi*100, v, qs.RandReads, qs.Iterations, qs.Elapsed.Round(1e3))
	}

	// Quick queries: zero disk I/O, coarser guarantee (1.5·ε·N).
	v, err := eng.QuantileQuick(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p50 (quick, no I/O) = %d\n", v)

	mu := eng.MemoryUsage()
	fmt.Printf("\nsummary memory: %d B historical + %d B stream\n", mu.HistBytes, mu.StreamBytes)
}
