// Latency monitoring: the paper's first motivating application (§1).
// A web service's request latencies stream in; operators watch the median
// and tail quantiles (p95/p99) of *all traffic ever served* and of recent
// windows, comparing today's tail against history to spot regressions.
//
// The simulation runs "days" (time steps) of traffic whose base latency
// drifts and occasionally degrades, then shows how the union quantiles and
// windowed quantiles expose the regression.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"repro"
)

// day simulates one day of request latencies in microseconds: log-normal
// body around base, with a heavy tail.
func day(rng *rand.Rand, base float64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		lat := math.Exp(rng.NormFloat64()*0.5 + math.Log(base))
		if rng.Float64() < 0.02 {
			lat *= 10 + rng.Float64()*20 // slow outliers: GC, cold caches
		}
		out[i] = int64(lat)
	}
	return out
}

func main() {
	dir, err := os.MkdirTemp("", "hsq-latency-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := hsq.New(hsq.Config{Epsilon: 0.005, Kappa: 10, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	fmt.Println("day   base(µs)   p50      p95      p99      (over all data so far)")
	const requestsPerDay = 40_000
	for dayN := 1; dayN <= 14; dayN++ {
		base := 2000.0
		if dayN >= 12 {
			base = 3500 // regression ships on day 12
		}
		eng.ObserveSlice(day(rng, base, requestsPerDay))

		// Batch query: the combined summary is built once for all three
		// targets.
		qs, _, err := eng.Quantiles([]float64{0.50, 0.95, 0.99})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d   %7.0f   %6d   %6d   %6d\n", dayN, base, qs[0], qs[1], qs[2])

		if _, err := eng.EndStep(); err != nil {
			log.Fatal(err)
		}
	}

	// Compare the freshest aligned window against all-time history: the
	// regression is obvious in the window, diluted in the global view.
	fmt.Println("\nwindowed p99 (most recent partition-aligned windows):")
	wins := eng.AvailableWindows()
	for _, w := range wins {
		if w > 4 && w != wins[len(wins)-1] {
			continue // show small windows + the full horizon
		}
		v, _, err := eng.WindowQuantile(0.99, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  last %2d day(s): p99 = %d µs\n", w, v)
	}
}
