// Command remote demonstrates the remote ingest subsystem end to end in
// one process: an hsq.DB behind an ingest listener (the server half of
// `hsqd -ingest-addr`), fed over a real TCP socket by the hsqclient
// batching SDK — two streams multiplexed on one connection, an
// end-of-step marker, a Flush barrier, and quantile queries against the
// data that just arrived.
//
// Against a separately running daemon the client half is identical:
//
//	hsqd -dir /var/lib/hsq -epsilon 0.001 -ingest-addr :9090 &
//	... hsqclient.Dial("localhost:9090") ...
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"

	"repro"
	"repro/hsqclient"
	"repro/internal/ingest"
)

func main() {
	// Server half: a volatile DB with async maintenance (ingest never
	// stalls on merges; backpressure bounds the backlog) behind an ingest
	// listener on a loopback port.
	db, err := hsq.Open(hsq.Options{
		Epsilon:         0.01,
		Backend:         "mem",
		Maintenance:     hsq.MaintenanceAsync,
		MaxPendingSteps: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	srv := ingest.New(ingest.Config{DB: db})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())
	fmt.Printf("ingest listener on %s\n", l.Addr())

	// Client half: one connection, two streams, batched transparently.
	c, err := hsqclient.Dial(l.Addr().String(), hsqclient.WithBatchSize(4096))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	lat := c.Stream("api.latency")
	size := c.Stream("api.size")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		// Log-normal-ish latencies in µs, heavy-tailed sizes in bytes.
		if err := lat.Observe(50 + rng.Int63n(1000)*rng.Int63n(1000)/1000); err != nil {
			log.Fatal(err)
		}
		if err := size.Observe(1 << (7 + rng.Intn(12))); err != nil {
			log.Fatal(err)
		}
	}
	if err := lat.EndStep(); err != nil { // close the day's first time step
		log.Fatal(err)
	}

	// Flush is the delivery barrier: after it returns, every Observe
	// above has been applied server-side (exactly once, even if the
	// connection had dropped and replayed mid-run).
	if err := c.Flush(); err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"api.latency", "api.size"} {
		st, ok := db.Lookup(name)
		if !ok {
			log.Fatalf("stream %s missing", name)
		}
		fmt.Printf("%-12s n=%d", name, st.TotalCount())
		for _, phi := range []float64{0.5, 0.95, 0.99} {
			v, _, err := st.Quantile(phi)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  p%g=%d", phi*100, v)
		}
		fmt.Println()
	}

	stats := srv.Stats()
	fmt.Printf("wire: %d conn(s), %d frames, %d values — vs %d HTTP round trips it replaced\n",
		stats.TotalConns, stats.Frames, stats.Values, stats.Values)
}
