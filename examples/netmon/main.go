// Network monitoring: the paper's network-trace setting (§1, §3.1) — a
// peering-link packet stream of source-destination pairs, archived hourly
// into a warehouse. Quantiles over the packed (src,dst) keys describe how
// traffic concentrates across the flow space; comparing the live hour's
// distribution against history flags shifts such as a new heavy flow
// (e.g. a DDoS source or a misconfigured batch job).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "hsq-netmon-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := hsq.New(hsq.Config{Epsilon: 0.01, Kappa: 10, Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.NewNetTrace(42)
	const packetsPerHour = 60_000

	// Archive 24 "hours" of traffic.
	for hour := 1; hour <= 24; hour++ {
		eng.ObserveSlice(workload.Fill(gen, packetsPerHour))
		us, err := eng.EndStep()
		if err != nil {
			log.Fatal(err)
		}
		if hour%6 == 0 {
			fmt.Printf("hour %2d archived (%d partitions on disk, %d block I/Os this step)\n",
				hour, eng.PartitionCount(), us.TotalIO())
		}
	}

	// The live hour streams in. Quartiles of the flow-key distribution over
	// history+stream:
	eng.ObserveSlice(workload.Fill(gen, packetsPerHour/2))
	fmt.Printf("\n%d archived packets + %d live packets\n", eng.HistCount(), eng.StreamCount())

	fmt.Println("\nflow-key distribution (src<<16|dst), union of history and live traffic:")
	for _, phi := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		v, qs, err := eng.Quantile(phi)
		if err != nil {
			log.Fatal(err)
		}
		src, dst := v>>16, v&0xFFFF
		fmt.Printf("  q%-4.2f key=%-12d (src=%-5d dst=%-5d)  [%d disk reads]\n",
			phi, v, src, dst, qs.RandReads)
	}

	// Windowed comparison: is the last 6 hours' median flow the same as the
	// all-time one? A shift means traffic is concentrating somewhere new.
	fmt.Println("\nmedian flow key by window:")
	for _, w := range eng.AvailableWindows() {
		v, _, err := eng.WindowQuantile(0.5, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  last %2d hour(s): median key = %d (src %d)\n", w, v, v>>16)
	}
}
