// Command multistream demonstrates the multi-stream hsq.DB: three
// per-endpoint latency streams multiplexed over one warehouse device and
// one shared block-cache budget, answering the classic p50/p95/p99
// dashboard query per endpoint with per-stream and device-wide I/O
// accounting.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "hsq-multistream-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One DB: one device, one cache budget, one manifest root.
	db, err := hsq.Open(hsq.Options{
		Epsilon:     0.01,
		Kappa:       10,
		Dir:         dir,
		CacheBlocks: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Stream names are one namespace segment: letters, digits, '.', '_',
	// '-' (they become directories under <dir>/streams/).
	endpoints := []struct {
		name string
		base float64 // log-normal-ish latency scale in µs
	}{
		{"get.users", 800},
		{"post.orders", 2500},
		{"get.search", 12000},
	}

	// Simulate a few time steps of traffic per endpoint.
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 5; step++ {
		for _, ep := range endpoints {
			st, err := db.Stream(ep.name)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 20000; i++ {
				// Right-skewed latencies: base × exp(noise).
				lat := int64(ep.base * (0.5 + rng.ExpFloat64()))
				st.Observe(lat)
			}
			if _, err := st.EndStep(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The dashboard: p50/p95/p99 per endpoint, batched per stream.
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "endpoint", "p50(µs)", "p95(µs)", "p99(µs)", "disk reads")
	for _, ep := range endpoints {
		st, err := db.Stream(ep.name)
		if err != nil {
			log.Fatal(err)
		}
		vals, qs, err := st.Quantiles([]float64{0.5, 0.95, 0.99})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10d %10d %10d %12d\n", ep.name, vals[0], vals[1], vals[2], qs.RandReads)
	}

	// Per-stream I/O sums to the device aggregate: many tenants, one
	// accountable device.
	fmt.Println()
	for name, io := range db.StreamStats() {
		fmt.Printf("stream %-14s randReads=%-5d cacheHits=%-5d seqWrites=%d\n",
			name, io.RandReads, io.CacheHits, io.SeqWrites)
	}
	agg := db.DiskStats()
	fmt.Printf("device %-14s randReads=%-5d cacheHits=%-5d seqWrites=%d\n",
		"(aggregate)", agg.RandReads, agg.CacheHits, agg.SeqWrites)
}
